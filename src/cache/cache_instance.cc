#include "src/cache/cache_instance.h"

#include <algorithm>
#include <cassert>

#include "src/cache/persistence_sink.h"
#include "src/common/hash.h"
#include "src/common/logging.h"

namespace gemini {

namespace {

uint32_t RoundUpPow2(uint32_t n) {
  uint32_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CacheInstance::CacheInstance(InstanceId id, const Clock* clock,
                             Options options)
    : id_(id),
      clock_(clock),
      options_(options),
      leases_(clock, options.lease_options),
      sink_(options.persistence) {
  const uint32_t n =
      RoundUpPow2(std::clamp<uint32_t>(options_.num_stripes, 1, 256));
  stripes_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  stripe_mask_ = n - 1;
  stripe_capacity_ = options_.capacity_bytes == 0
                         ? 0
                         : std::max<uint64_t>(1, options_.capacity_bytes / n);
}

CacheInstance::Stripe& CacheInstance::StripeOf(std::string_view key) const {
  // Mix the FNV hash before masking: fragment routing uses the same raw hash
  // modulo the fragment count, and shared factors between that modulus and
  // the stripe mask would collapse one fragment's keys onto a few stripes.
  return *stripes_[Mix64(Fnv1a64(key)) & stripe_mask_];
}

// ---- Availability & persistence emulation ----------------------------------

void CacheInstance::Fail() {
  std::unique_lock<std::shared_mutex> meta(meta_mu_);
  available_ = false;
}

void CacheInstance::RecoverPersistent() {
  // A writer may have crashed us between its data store update and its
  // delete-and-release: conservatively delete every entry with an
  // outstanding Q lease, the crash-spanning analogue of the Q-expiry rule
  // (Section 2.3). Gemini assumes the persistent medium retains this much.
  const std::vector<std::string> quarantined = leases_.KeysWithQLeases();
  {
    // Holding meta exclusively blocks the whole data path (every op takes it
    // shared first), so the recovery sweep below is one atomic step to
    // concurrent callers even though stripes are locked one at a time.
    std::unique_lock<std::shared_mutex> meta(meta_mu_);
    available_ = true;
    for (const auto& key : quarantined) {
      {
        Stripe& st = StripeOf(key);
        std::lock_guard<std::mutex> lock(st.mu);
        auto it = st.table.find(key);
        if (it != st.table.end()) {
          EraseLocked(st, it->second, /*count_as_delete=*/true);
        }
      }
      // The durable log must agree with the sweep: a restart replaying it
      // would drop these keys via the QBegin count anyway, but the explicit
      // delete keeps the on-disk history self-describing.
      if (sink_ != nullptr) sink_->OnDelete(PersistOp::kQExpiry, key);
    }
    // Fragment leases did not survive the crash; the coordinator re-grants
    // them as part of publishing the recovery-mode configuration.
    fragments_.clear();
    // Buffered write-back values are pinned in the persistent payload; the
    // in-memory flush queue is rebuilt from them (the durability payoff of
    // write-back on a persistent cache).
    std::deque<PendingFlush> rebuilt;
    for (const auto& sp : stripes_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      for (const Entry& e : sp->lru) {
        if (e.pinned) {
          rebuilt.push_back(PendingFlush{e.key, e.value});
        }
      }
    }
    {
      std::lock_guard<std::mutex> flush_lock(flush_mu_);
      pending_flush_ = std::move(rebuilt);
    }
    // Every outstanding quarantine is now resolved (swept above).
    if (sink_ != nullptr) sink_->OnQuarantineClear();
  }
  leases_.Clear();
}

void CacheInstance::RecoverVolatile() {
  {
    std::unique_lock<std::shared_mutex> meta(meta_mu_);
    available_ = true;
    fragments_.clear();
    for (const auto& sp : stripes_) {
      std::lock_guard<std::mutex> lock(sp->mu);
      sp->table.clear();
      sp->lru.clear();
      sp->used_bytes = 0;
    }
    {
      std::lock_guard<std::mutex> flush_lock(flush_mu_);
      pending_flush_.clear();  // volatile cache: buffered writes are LOST
    }
    if (sink_ != nullptr) sink_->OnVolatileWipe();
  }
  leases_.Clear();
}

bool CacheInstance::available() const {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  return available_;
}

// ---- Coordinator-facing fragment management ---------------------------------

void CacheInstance::GrantFragmentLease(FragmentId fragment,
                                       ConfigId min_valid_config,
                                       Timestamp expiry,
                                       ConfigId latest_config) {
  std::unique_lock<std::shared_mutex> meta(meta_mu_);
  fragments_[fragment] = FragmentLease{min_valid_config, expiry};
  const ConfigId before = latest_config_;
  latest_config_ = std::max(latest_config_, latest_config);
  if (sink_ != nullptr && latest_config_ > before) {
    sink_->OnConfigObserved(latest_config_);
  }
}

void CacheInstance::RevokeFragmentLease(FragmentId fragment,
                                        ConfigId latest_config) {
  std::unique_lock<std::shared_mutex> meta(meta_mu_);
  fragments_.erase(fragment);
  const ConfigId before = latest_config_;
  latest_config_ = std::max(latest_config_, latest_config);
  if (sink_ != nullptr && latest_config_ > before) {
    sink_->OnConfigObserved(latest_config_);
  }
}

ConfigId CacheInstance::latest_config_id() const {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  return latest_config_;
}

void CacheInstance::ObserveConfigId(ConfigId latest) {
  std::unique_lock<std::shared_mutex> meta(meta_mu_);
  const ConfigId before = latest_config_;
  latest_config_ = std::max(latest_config_, latest);
  if (sink_ != nullptr && latest_config_ > before) {
    sink_->OnConfigObserved(latest_config_);
  }
}

bool CacheInstance::HoldsFragmentLease(FragmentId fragment) const {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  auto it = fragments_.find(fragment);
  return it != fragments_.end() && it->second.expiry > clock_->Now();
}

std::optional<ConfigId> CacheInstance::FragmentLeaseMinValid(
    FragmentId fragment) const {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  auto it = fragments_.find(fragment);
  if (it == fragments_.end() || it->second.expiry <= clock_->Now()) {
    return std::nullopt;
  }
  return it->second.min_valid_config;
}

std::optional<CacheValue> CacheInstance::RawGet(std::string_view key) const {
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it == st.table.end()) return std::nullopt;
  return it->second->value;
}

// ---- Internal helpers --------------------------------------------------------

uint64_t CacheInstance::ChargeOf(const Entry& e) const {
  return e.key.size() + e.value.charged_bytes + options_.per_entry_overhead;
}

void CacheInstance::TouchLocked(Stripe& st, LruList::iterator it) {
  st.lru.splice(st.lru.begin(), st.lru, it);
}

void CacheInstance::EraseLocked(Stripe& st, LruList::iterator it,
                                bool count_as_delete) {
  st.used_bytes -= ChargeOf(*it);
  if (count_as_delete) {
    counters_.deletes.fetch_add(1, std::memory_order_relaxed);
  }
  st.table.erase(std::string_view(it->key));
  st.lru.erase(it);
}

void CacheInstance::EvictLocked(Stripe& st) {
  if (stripe_capacity_ == 0) return;
  // Never evict the most recently used entry: it is the one the current
  // operation just wrote. A single entry above capacity therefore survives
  // (memcached instead rejects items above its item-size cap; UpsertLocked
  // applies that rejection for values, and dirty lists stay usable).
  // Pinned entries (buffered write-back values) are skipped: evicting one
  // would lose an acknowledged write.
  auto victim = st.lru.end();
  while (st.used_bytes > stripe_capacity_ && victim != st.lru.begin()) {
    --victim;
    if (victim == st.lru.begin()) break;  // never the MRU entry
    if (victim->pinned) continue;
    auto doomed = victim;
    ++victim;  // keep the cursor valid past the erase
    counters_.evictions.fetch_add(1, std::memory_order_relaxed);
    EraseLocked(st, doomed, /*count_as_delete=*/false);
  }
}

bool CacheInstance::UpsertLocked(Stripe& st, std::string_view key,
                                 CacheValue value, ConfigId cfg) {
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    Entry& e = *it->second;
    st.used_bytes -= ChargeOf(e);
    e.value = std::move(value);
    e.config_id = cfg;
    st.used_bytes += ChargeOf(e);
    TouchLocked(st, it->second);
  } else {
    Entry e;
    e.key = std::string(key);
    e.value = std::move(value);
    e.config_id = cfg;
    const uint64_t charge = ChargeOf(e);
    if (stripe_capacity_ != 0 && charge > stripe_capacity_) {
      return false;  // Larger than the stripe's budget: reject, as memcached
                     // rejects items above its item-size cap.
    }
    st.lru.push_front(std::move(e));
    st.table.emplace(std::string_view(st.lru.front().key), st.lru.begin());
    st.used_bytes += charge;
  }
  counters_.inserts.fetch_add(1, std::memory_order_relaxed);
  EvictLocked(st);
  return true;
}

Status CacheInstance::CheckRequestMeta(const OpContext& ctx) const {
  if (!available_) {
    return Status(Code::kUnavailable, "instance down");
  }
  if (ctx.config_id != kInternalConfigId && ctx.config_id < latest_config_) {
    // Rejig: the client's cached configuration is older than the latest id
    // this instance has observed — make it refresh before serving it.
    return Status(Code::kStaleConfig);
  }
  if (ctx.fragment != kInvalidFragment) {
    auto it = fragments_.find(ctx.fragment);
    if (it == fragments_.end() || it->second.expiry <= clock_->Now()) {
      return Status(Code::kWrongInstance, "no fragment lease");
    }
  }
  return Status::Ok();
}

ConfigId CacheInstance::StampForMeta(const OpContext& ctx) const {
  return ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
}

ConfigId CacheInstance::MinValidMeta(const OpContext& ctx) const {
  if (ctx.fragment == kInvalidFragment) return 0;
  auto it = fragments_.find(ctx.fragment);
  return it == fragments_.end() ? 0 : it->second.min_valid_config;
}

void CacheInstance::LogUpsertLocked(Stripe& st, PersistOp op,
                                    std::string_view key) {
  if (sink_ == nullptr) return;
  auto it = st.table.find(key);
  if (it == st.table.end()) return;  // upsert was rejected (over budget)
  const Entry& e = *it->second;
  sink_->OnUpsert(op, key, e.value, e.config_id, e.pinned);
}

CacheInstance::Table::iterator CacheInstance::FindValidLocked(
    Stripe& st, ConfigId min_valid, std::string_view key) {
  // A Q lease that expired un-released forces deletion of the entry
  // (Section 2.3) — apply that before looking the key up.
  if (leases_.ExpireKey(key).delete_entry) {
    auto stale = st.table.find(key);
    if (stale != st.table.end()) {
      EraseLocked(st, stale->second, /*count_as_delete=*/true);
    }
    if (sink_ != nullptr) {
      sink_->OnDelete(PersistOp::kQExpiry, key);
      sink_->OnQuarantineEnd(key);
    }
  }
  auto it = st.table.find(key);
  if (it == st.table.end()) return st.table.end();
  if (it->second->config_id < min_valid) {
    // Obsolete under the Rejig rule (Section 3.2.4): written before the
    // fragment's current minimum-valid configuration — discard lazily. Not
    // logged to the persistence sink: a replayed entry keeps its old stamp
    // and is re-discarded the same way once leases are re-granted.
    counters_.config_discards.fetch_add(1, std::memory_order_relaxed);
    EraseLocked(st, it->second, /*count_as_delete=*/false);
    return st.table.end();
  }
  return it;
}

// ---- Data path ----------------------------------------------------------------

Result<CacheValue> CacheInstance::Get(const OpContext& ctx,
                                      std::string_view key) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId min_valid = MinValidMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = FindValidLocked(st, min_valid, key);
  if (it == st.table.end()) {
    counters_.misses.fetch_add(1, std::memory_order_relaxed);
    return Status(Code::kNotFound);
  }
  counters_.hits.fetch_add(1, std::memory_order_relaxed);
  TouchLocked(st, it->second);
  return it->second->value;
}

Result<IqGetResult> CacheInstance::IqGet(const OpContext& ctx,
                                         std::string_view key) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId min_valid = MinValidMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = FindValidLocked(st, min_valid, key);
  if (it != st.table.end()) {
    counters_.hits.fetch_add(1, std::memory_order_relaxed);
    TouchLocked(st, it->second);
    IqGetResult r;
    r.value = it->second->value;
    return r;
  }
  counters_.misses.fetch_add(1, std::memory_order_relaxed);
  Result<LeaseToken> lease = leases_.AcquireI(key);
  if (!lease.ok()) {
    return lease.status();  // kBackoff: another session is filling this key.
  }
  IqGetResult r;
  r.i_token = *lease;
  return r;
}

Status CacheInstance::IqSet(const OpContext& ctx, std::string_view key,
                            CacheValue value, LeaseToken token) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId cfg = StampForMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  if (!leases_.CheckI(key, token)) {
    // Voided by a Q lease or expired: ignore the insert (Section 2.3).
    return Status(Code::kLeaseInvalid);
  }
  UpsertLocked(st, key, std::move(value), cfg);
  // The lease table has its own lock, so a concurrent Qareg may have voided
  // the I lease between the check above and the insert. Re-verify under the
  // stripe lock and undo the insert if so: the Q-lease holder deletes or
  // overwrites the entry anyway, and keeping the stale fill would recreate
  // the very race the I/Q protocol exists to prevent.
  if (!leases_.CheckI(key, token)) {
    auto it = st.table.find(key);
    if (it != st.table.end()) {
      EraseLocked(st, it->second, /*count_as_delete=*/false);
    }
    return Status(Code::kLeaseInvalid);
  }
  LogUpsertLocked(st, PersistOp::kIqSet, key);
  leases_.ReleaseI(key, token);
  return Status::Ok();
}

Result<LeaseToken> CacheInstance::Qareg(const OpContext& ctx,
                                        std::string_view key) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  Result<LeaseToken> token = leases_.AcquireQ(key);
  if (token.ok() && sink_ != nullptr) {
    // Durable (eagerly synced) before the token escapes: once the writer
    // holds it, it may update the data store at any moment, and a crash
    // must then treat this key as quarantined.
    sink_->OnQuarantineBegin(key);
  }
  return token;
}

Status CacheInstance::Dar(const OpContext& ctx, std::string_view key,
                          LeaseToken token) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    EraseLocked(st, it->second, /*count_as_delete=*/true);
  }
  if (sink_ != nullptr) {
    sink_->OnDelete(PersistOp::kDar, key);
    sink_->OnQuarantineEnd(key);
  }
  leases_.ReleaseQ(key, token);
  return Status::Ok();
}

Status CacheInstance::WriteBackInstall(const OpContext& ctx,
                                       std::string_view key, CacheValue value,
                                       LeaseToken token) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId cfg = StampForMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  if (!leases_.CheckQ(key, token)) {
    return Status(Code::kLeaseInvalid);
  }
  CacheValue copy = value;
  if (!UpsertLocked(st, key, std::move(value), cfg)) {
    // Larger than the stripe's budget: the write cannot be buffered; the
    // caller must fall back to a synchronous policy.
    return Status(Code::kInvalidArgument, "value larger than cache capacity");
  }
  auto it = st.table.find(key);
  it->second->pinned = true;
  {
    std::lock_guard<std::mutex> flush_lock(flush_mu_);
    pending_flush_.push_back(PendingFlush{std::string(key), std::move(copy)});
  }
  // Logged pinned + eagerly synced by the sink: the ack'd value exists
  // nowhere but this cache until its flush lands.
  LogUpsertLocked(st, PersistOp::kWriteBack, key);
  if (sink_ != nullptr) sink_->OnQuarantineEnd(key);
  leases_.ReleaseQ(key, token);
  return Status::Ok();
}

std::vector<CacheInstance::PendingFlush> CacheInstance::TakePendingFlushes(
    size_t max) {
  std::lock_guard<std::mutex> lock(flush_mu_);
  std::vector<PendingFlush> out;
  while (!pending_flush_.empty() && out.size() < max) {
    out.push_back(std::move(pending_flush_.front()));
    pending_flush_.pop_front();
  }
  return out;
}

void CacheInstance::Unpin(std::string_view key, Version version) {
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it == st.table.end()) return;
  // A newer buffered write keeps the pin until its own flush lands.
  if (it->second->value.version <= version) {
    it->second->pinned = false;
  }
  EvictLocked(st);
}

size_t CacheInstance::pending_flush_count() const {
  size_t pinned = 0;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    for (const Entry& e : sp->lru) {
      if (e.pinned) ++pinned;
    }
  }
  std::lock_guard<std::mutex> lock(flush_mu_);
  return std::max(pinned, pending_flush_.size());
}

Status CacheInstance::Rar(const OpContext& ctx, std::string_view key,
                          CacheValue value, LeaseToken token) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId cfg = StampForMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  if (!leases_.CheckQ(key, token)) {
    return Status(Code::kLeaseInvalid);
  }
  UpsertLocked(st, key, std::move(value), cfg);
  // A synchronous write supersedes any buffered one for this key: the
  // installed value is already committed, so the pin can go (a late flush
  // of the older buffered version is a no-op at the store).
  auto it = st.table.find(key);
  if (it != st.table.end()) it->second->pinned = false;
  LogUpsertLocked(st, PersistOp::kRar, key);
  if (sink_ != nullptr) sink_->OnQuarantineEnd(key);
  leases_.ReleaseQ(key, token);
  return Status::Ok();
}

Result<LeaseToken> CacheInstance::ISet(const OpContext& ctx,
                                       std::string_view key) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  Result<LeaseToken> lease = leases_.AcquireI(key);
  if (!lease.ok()) {
    return lease.status();
  }
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    EraseLocked(st, it->second, /*count_as_delete=*/true);
  }
  if (sink_ != nullptr) sink_->OnDelete(PersistOp::kISet, key);
  return *lease;
}

Status CacheInstance::IDelete(const OpContext& ctx, std::string_view key,
                              LeaseToken token) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    EraseLocked(st, it->second, /*count_as_delete=*/true);
  }
  if (sink_ != nullptr) sink_->OnDelete(PersistOp::kIDelete, key);
  leases_.ReleaseI(key, token);
  return Status::Ok();
}

Status CacheInstance::Delete(const OpContext& ctx, std::string_view key) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    EraseLocked(st, it->second, /*count_as_delete=*/true);
  }
  if (sink_ != nullptr) sink_->OnDelete(PersistOp::kDelete, key);
  return Status::Ok();
}

Status CacheInstance::Set(const OpContext& ctx, std::string_view key,
                          CacheValue value) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId cfg = StampForMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  if (!UpsertLocked(st, key, std::move(value), cfg)) {
    return Status(Code::kInvalidArgument, "value larger than cache capacity");
  }
  LogUpsertLocked(st, PersistOp::kSet, key);
  return Status::Ok();
}

Status CacheInstance::Cas(const OpContext& ctx, std::string_view key,
                          Version expected, CacheValue value) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId min_valid = MinValidMeta(ctx);
  const ConfigId cfg = StampForMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = FindValidLocked(st, min_valid, key);
  if (it == st.table.end()) {
    counters_.misses.fetch_add(1, std::memory_order_relaxed);
    return Status(Code::kNotFound);
  }
  if (it->second->value.version != expected) {
    return Status(Code::kLeaseInvalid, "cas version mismatch");
  }
  if (!UpsertLocked(st, key, std::move(value), cfg)) {
    return Status(Code::kInvalidArgument, "value larger than cache capacity");
  }
  LogUpsertLocked(st, PersistOp::kSet, key);
  return Status::Ok();
}

Status CacheInstance::Append(const OpContext& ctx, std::string_view key,
                             std::string_view data) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  const ConfigId cfg = StampForMeta(ctx);
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it == st.table.end()) {
    // memcached-style append would fail here; Gemini relies on create-on-
    // append so that the *marker* (not entry existence) detects evictions.
    CacheValue value = CacheValue::OfData(std::string(data));
    if (!UpsertLocked(st, key, std::move(value), cfg)) {
      return Status(Code::kInvalidArgument, "append larger than capacity");
    }
    LogUpsertLocked(st, PersistOp::kAppend, key);
    return Status::Ok();
  }
  Entry& e = *it->second;
  st.used_bytes -= ChargeOf(e);
  e.value.data.append(data);
  e.value.charged_bytes = static_cast<uint32_t>(
      std::max<size_t>(e.value.charged_bytes, e.value.data.size()));
  st.used_bytes += ChargeOf(e);
  TouchLocked(st, it->second);
  EvictLocked(st);
  LogUpsertLocked(st, PersistOp::kAppend, key);
  return Status::Ok();
}

// ---- Redlease -------------------------------------------------------------------

Result<LeaseToken> CacheInstance::AcquireRed(std::string_view key) {
  {
    std::shared_lock<std::shared_mutex> meta(meta_mu_);
    if (!available_) return Status(Code::kUnavailable);
  }
  return leases_.AcquireRed(key);
}

Status CacheInstance::ReleaseRed(std::string_view key, LeaseToken token) {
  leases_.ReleaseRed(key, token);
  return Status::Ok();
}

Status CacheInstance::RenewRed(std::string_view key, LeaseToken token) {
  {
    std::shared_lock<std::shared_mutex> meta(meta_mu_);
    if (!available_) return Status(Code::kUnavailable);
  }
  return leases_.RenewRed(key, token) ? Status::Ok()
                                      : Status(Code::kLeaseInvalid);
}

// ---- Working-set enumeration -------------------------------------------------

Result<WorkingSetPage> CacheInstance::WorkingSetScan(const OpContext& ctx,
                                                     uint32_t num_fragments,
                                                     uint64_t cursor,
                                                     uint32_t max_keys) {
  std::shared_lock<std::shared_mutex> meta(meta_mu_);
  if (Status s = CheckRequestMeta(ctx); !s.ok()) return s;
  if (num_fragments == 0 || max_keys == 0) {
    return Status(Code::kInvalidArgument, "bad working-set scan bounds");
  }
  const ConfigId min_valid = MinValidMeta(ctx);
  const size_t nstripes = stripes_.size();
  const uint32_t depth =
      std::max<uint32_t>(1, max_keys / static_cast<uint32_t>(nstripes));

  // Cursor = (band << 32) | next stripe index. The page always breaks at a
  // stripe boundary so a resumed scan never re-emits a half-visited stripe.
  uint64_t band = cursor >> 32;
  size_t stripe = static_cast<uint32_t>(cursor);
  if (stripe >= nstripes) stripe = 0;  // defensive against a garbage cursor
  // Whether any stripe yielded an item in the current band. A resumed
  // mid-band cursor assumes the skipped stripes did (worst case: one extra
  // empty band before the scan reports done).
  bool band_yielded = stripe != 0;

  WorkingSetPage page;
  const auto matches = [&](const Entry& e) {
    if (e.config_id < min_valid) return false;  // obsolete under Rejig
    const std::string_view key = e.key;
    if (key.size() >= sizeof(kInternalKeyPrefix) - 1 &&
        key.compare(0, sizeof(kInternalKeyPrefix) - 1, kInternalKeyPrefix) ==
            0) {
      return false;  // dirty lists / config entry are not working set
    }
    return Fnv1a64(key) % num_fragments == ctx.fragment;
  };

  for (;;) {
    if (stripe == nstripes) {
      if (!band_yielded) return page;  // a whole band came up dry: done
      ++band;
      stripe = 0;
      band_yielded = false;
      continue;
    }
    // Break only between stripes, and only once something was emitted, so
    // every call makes progress and the cursor stays stripe-aligned. A page
    // may overshoot max_keys by up to depth-1 items.
    if (!page.items.empty() && page.items.size() + depth > max_keys) {
      page.next_cursor = (band << 32) | static_cast<uint64_t>(stripe);
      return page;
    }
    Stripe& st = *stripes_[stripe];
    {
      std::lock_guard<std::mutex> lock(st.mu);
      // Band b wants this stripe's matches at LRU positions
      // [b*depth, (b+1)*depth): walk MRU->LRU, skip b*depth matches, emit
      // up to depth.
      uint64_t skip = band * depth;
      uint32_t emitted = 0;
      for (const Entry& e : st.lru) {
        if (!matches(e)) continue;
        if (skip > 0) {
          --skip;
          continue;
        }
        page.items.push_back(
            WorkingSetItem{e.key, e.value.charged_bytes});
        if (++emitted == depth) break;
      }
      if (emitted > 0) band_yielded = true;
    }
    ++stripe;
  }
}

// ---- Introspection -----------------------------------------------------------------

CacheInstance::Stats CacheInstance::stats() const {
  Stats s;
  s.hits = counters_.hits.load(std::memory_order_relaxed);
  s.misses = counters_.misses.load(std::memory_order_relaxed);
  s.inserts = counters_.inserts.load(std::memory_order_relaxed);
  s.deletes = counters_.deletes.load(std::memory_order_relaxed);
  s.evictions = counters_.evictions.load(std::memory_order_relaxed);
  s.config_discards = counters_.config_discards.load(std::memory_order_relaxed);
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    s.used_bytes += sp->used_bytes;
    s.entry_count += sp->lru.size();
  }
  return s;
}

void CacheInstance::ResetCounters() {
  counters_.hits.store(0, std::memory_order_relaxed);
  counters_.misses.store(0, std::memory_order_relaxed);
  counters_.inserts.store(0, std::memory_order_relaxed);
  counters_.deletes.store(0, std::memory_order_relaxed);
  counters_.evictions.store(0, std::memory_order_relaxed);
  counters_.config_discards.store(0, std::memory_order_relaxed);
}

bool CacheInstance::ContainsRaw(std::string_view key) const {
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  return st.table.find(key) != st.table.end();
}

std::optional<ConfigId> CacheInstance::RawConfigIdOf(
    std::string_view key) const {
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it == st.table.end()) return std::nullopt;
  return it->second->config_id;
}

void CacheInstance::ForEachEntry(
    const std::function<void(std::string_view, const CacheValue&, ConfigId,
                             bool)>& fn) const {
  // Lock every stripe, in ascending index order, for the whole iteration:
  // the callback observes one coherent cut of the table even while writers
  // run on other threads (they block on their stripe until we finish).
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes_.size());
  for (const auto& sp : stripes_) {
    locks.emplace_back(sp->mu);
  }
  for (const auto& sp : stripes_) {
    for (const Entry& e : sp->lru) {
      fn(e.key, e.value, e.config_id, e.pinned);
    }
  }
}

Status CacheInstance::RestoreEntry(std::string_view key, CacheValue value,
                                   ConfigId config_id, bool pinned) {
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  CacheValue copy = pinned ? value : CacheValue{};
  if (!UpsertLocked(st, key, std::move(value), config_id)) {
    return Status(Code::kInvalidArgument, "entry larger than cache capacity");
  }
  // The pin state is restored explicitly both ways: WAL replay re-installs a
  // key several times, and a later unpinned record must clear the pin a
  // prior pinned record set.
  auto it = st.table.find(key);
  it->second->pinned = pinned;
  if (pinned) {
    std::lock_guard<std::mutex> flush_lock(flush_mu_);
    pending_flush_.push_back(PendingFlush{std::string(key), std::move(copy)});
  }
  return Status::Ok();
}

void CacheInstance::RestoreErase(std::string_view key) {
  Stripe& st = StripeOf(key);
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.table.find(key);
  if (it != st.table.end()) {
    EraseLocked(st, it->second, /*count_as_delete=*/false);
  }
}

void CacheInstance::RebuildFlushQueue() {
  std::unique_lock<std::shared_mutex> meta(meta_mu_);
  std::deque<PendingFlush> rebuilt;
  for (const auto& sp : stripes_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    for (const Entry& e : sp->lru) {
      if (e.pinned) {
        rebuilt.push_back(PendingFlush{e.key, e.value});
      }
    }
  }
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  pending_flush_ = std::move(rebuilt);
}

void CacheInstance::SetPersistenceSink(PersistenceSink* sink) {
  std::unique_lock<std::shared_mutex> meta(meta_mu_);
  sink_ = sink;
  options_.persistence = sink;
}

}  // namespace gemini
