// The cache → durability boundary.
//
// CacheInstance does not know about files, fsync, or WAL framing; it reports
// every durable state change through this narrow interface while still
// holding the lock that made the change atomic. The persist/ subsystem
// implements it (PersistentStore); tests implement it to spy on the write
// path. A null sink (the default) is exactly the legacy volatile behavior.
//
// Locking contract: OnUpsert/OnDelete are invoked under the key's stripe
// mutex, OnQuarantineBegin/End under the meta lock (shared), and
// OnConfigObserved under the meta lock (exclusive). Implementations must not
// call back into the cache and must not block unboundedly — an append to a
// buffered log is the intended cost.
#pragma once

#include <string_view>

#include "src/cache/cache_backend.h"
#include "src/common/types.h"

namespace gemini {

/// Which cache operation caused a persisted mutation. Recovery does not need
/// this to replay (records carry exact values), but it makes the log legible
/// and lets the crash-point oracle reason about lease-protected writes.
enum class PersistOp : uint8_t {
  kSet = 0,        // plain Set / Cas
  kIqSet = 1,      // IqSet filling a miss under an I lease
  kRar = 2,        // read-after-recovery copy-in
  kAppend = 3,     // read-modify-write append
  kWriteBack = 4,  // WriteBackInstall of a buffered dirty write
  kDelete = 5,     // plain Delete
  kDar = 6,        // delete-after-recovery
  kIDelete = 7,    // invalidate under an I lease
  kISet = 8,       // ISet (refill marker → delete on this path)
  kQExpiry = 9,    // entry dropped because its Q lease expired unreleased
};

class PersistenceSink {
 public:
  virtual ~PersistenceSink() = default;

  /// `key` now maps to `value` (exact bytes, version, charge) at `config_id`.
  /// `pinned` mirrors the flush-queue pin (buffered write not yet persisted
  /// to the data store).
  virtual void OnUpsert(PersistOp op, std::string_view key,
                        const CacheValue& value, ConfigId config_id,
                        bool pinned) = 0;

  /// `key` no longer maps to anything.
  virtual void OnDelete(PersistOp op, std::string_view key) = 0;

  /// A Q lease was granted on `key` (Qareg). Until the matching
  /// OnQuarantineEnd, a crash must treat `key` as quarantined: its cached
  /// value may be about to diverge from the data store.
  virtual void OnQuarantineBegin(std::string_view key) = 0;

  /// The Q lease on `key` resolved (Dar applied, write-back installed, or
  /// the lease expired and the entry was dropped).
  virtual void OnQuarantineEnd(std::string_view key) = 0;

  /// The instance-wide latest config id advanced to `latest`.
  virtual void OnConfigObserved(ConfigId latest) = 0;

  /// RecoverPersistent finished its sweep: every outstanding quarantine is
  /// resolved (the swept keys were reported through OnDelete first).
  virtual void OnQuarantineClear() = 0;

  /// RecoverVolatile wiped the instance: all prior entries, pins, and
  /// quarantines are gone (the observed config id survives).
  virtual void OnVolatileWipe() = 0;
};

}  // namespace gemini
