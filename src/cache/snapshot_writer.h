// SnapshotWriter: periodic, multi-instance snapshot persistence.
//
// geminid's durability loop, extracted into the library so it can host any
// number of instances and be tested without a process: each target pairs a
// CacheInstance with its snapshot file, and a single background thread
// writes every target each `interval` (Snapshot::WriteToFile, so every
// write is fsync+rename-atomic and a crash mid-write leaves the previous
// snapshot intact).
//
// Shutdown contract (the SIGTERM path): Stop() wakes the thread and joins
// it — a write in flight *completes* before Stop() returns, and targets
// not yet reached in that sweep are skipped whole; nothing is ever torn.
// The caller then runs WriteAll() for the final authoritative write.
// WriteAll() is also safe concurrently with the periodic thread (and with
// wire-triggered snapshots of the same instance): writers never share temp
// files, so the last complete snapshot wins.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/common/clock.h"
#include "src/common/status.h"

namespace gemini {

class SnapshotWriter {
 public:
  struct Target {
    CacheInstance* instance = nullptr;
    std::string path;
  };

  struct Options {
    /// Time between periodic sweeps; <= 0 disables the background thread
    /// (WriteAll() remains usable for explicit writes).
    Duration interval = 0;
  };

  SnapshotWriter(std::vector<Target> targets, Options options);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Starts the periodic thread (no-op when interval <= 0 or no targets).
  /// kInvalidArgument when already started or a target is malformed.
  Status Start();

  /// Stops the periodic thread; an in-flight write completes first.
  /// Idempotent, safe without Start().
  void Stop();

  /// Writes every target now, on the calling thread. Returns the first
  /// failure (after attempting all targets) or Ok.
  Status WriteAll();

  [[nodiscard]] bool running() const;

  struct Stats {
    uint64_t writes_ok = 0;
    uint64_t writes_failed = 0;
    uint64_t sweeps = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  void Loop();
  Status WriteAllInternal();

  const std::vector<Target> targets_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;

  /// Serializes sweeps (periodic thread vs. WriteAll callers) so the final
  /// write of a shutdown is ordered after any in-flight periodic one.
  std::mutex write_mu_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace gemini
