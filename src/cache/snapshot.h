// On-disk snapshots for CacheInstance.
//
// The paper emulates its persistent cache "using DRAM" (Section 4) because
// Gemini's recovery protocol is agnostic to the storage medium. This module
// supplies the real medium for deployments and durability tests: a compact
// binary snapshot of an instance's entries (keys, payloads/charged sizes,
// versions, and — critically for Gemini — the per-entry configuration ids
// and the set of keys quarantined by outstanding Q leases).
//
// Format (little-endian, versioned):
//   header:  magic "GEMSNAP1" | u64 entry_count | u64 quarantined_count
//   entry:   u32 key_len | key bytes | u32 data_len | data bytes |
//            u32 charged_bytes | u64 version | u64 config_id
//   quarantined keys: u32 key_len | key bytes  (per key)
//   trailer: u64 FNV-1a checksum of everything before it
//
// Load validates the magic and checksum and fails closed (kInternal) on any
// corruption: a persistent cache must never serve a torn snapshot. Loading
// applies the crash-spanning Q rule: quarantined keys are NOT restored
// (their writers may have updated the data store without completing the
// delete).
#pragma once

#include <string>

#include "src/cache/cache_instance.h"
#include "src/common/status.h"

namespace gemini {

class Snapshot {
 public:
  /// Serializes the instance's current entries and quarantined-key set.
  static std::string Serialize(CacheInstance& instance);

  /// Writes Serialize() to `path` atomically (temp file + rename).
  static Status WriteToFile(CacheInstance& instance, const std::string& path);

  /// Parses `payload` and installs its entries into `instance` (which
  /// should be empty — existing entries are replaced on key collision).
  /// Quarantined keys are skipped. Fails closed on corruption.
  static Status Load(CacheInstance& instance, std::string_view payload);

  /// Reads `path` and Load()s it.
  static Status LoadFromFile(CacheInstance& instance,
                             const std::string& path);
};

}  // namespace gemini
