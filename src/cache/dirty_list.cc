#include "src/cache/dirty_list.h"

namespace gemini {

namespace {
constexpr std::string_view kMarker = "\x01M";
}  // namespace

std::string DirtyList::InitialPayload() {
  return std::string(kMarker) + "\n";
}

std::string DirtyList::EncodeRecord(std::string_view key) {
  std::string rec(key);
  rec += '\n';
  return rec;
}

std::optional<DirtyList> DirtyList::Parse(std::string_view payload) {
  // A valid list begins with the marker record; anything else means the
  // original (marker-bearing) entry was evicted and a client append
  // re-created a partial list (Section 3.1).
  const std::string expected = InitialPayload();
  if (payload.substr(0, expected.size()) != expected) {
    return std::nullopt;
  }
  payload.remove_prefix(expected.size());

  DirtyList list;
  while (!payload.empty()) {
    const size_t nl = payload.find('\n');
    if (nl == std::string_view::npos) {
      // Truncated trailing record: treat the list as ending here. Appends are
      // atomic in our instance, so this only happens with corrupted payloads.
      break;
    }
    const std::string_view rec = payload.substr(0, nl);
    payload.remove_prefix(nl + 1);
    if (rec.empty() || rec == kMarker) continue;
    ++list.raw_records_;
    if (list.index_.insert(std::string(rec)).second) {
      list.keys_.emplace_back(rec);
    }
  }
  return list;
}

bool DirtyList::Contains(std::string_view key) const {
  return index_.find(std::string(key)) != index_.end();
}

void DirtyList::Remove(std::string_view key) {
  index_.erase(std::string(key));
}

}  // namespace gemini
