// Dirty-list codec (Section 3.1).
//
// While a fragment is in transient mode, the instance hosting its secondary
// replica maintains a *dirty list*: the keys deleted/updated by writes that
// referenced the fragment while its primary was down. The list is represented
// as an ordinary cache entry (key DirtyListKey(fragment)) so that it competes
// for memory and may be evicted — Gemini detects that and discards the
// unrecoverable primary replica rather than serving stale data.
//
// Eviction detection uses a *marker*: the coordinator initializes the list
// with a marker record when the fragment enters transient mode. Appends by
// clients may re-create the entry after an eviction (memcached-style append
// cannot distinguish "never existed" from "evicted"), but the re-created list
// lacks the marker and is therefore detected as partial and unusable.
//
// Wire format: length-prefix-free, newline-delimited records. The marker is
// the single record "\x01M"; every other record is a raw key (keys never
// contain '\n').
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace gemini {

class DirtyList {
 public:
  /// The serialized form of a freshly initialized (marker-only) list.
  static std::string InitialPayload();

  /// Serializes one key as an appendable record.
  static std::string EncodeRecord(std::string_view key);

  /// Parses a serialized dirty list. Returns std::nullopt if the payload is
  /// partial (does not begin with the marker), meaning the original list was
  /// evicted and this entry was re-created by a later append.
  static std::optional<DirtyList> Parse(std::string_view payload);

  /// Unique keys in first-append order, as of parse time. Not affected by
  /// Remove(); use Contains() for current membership.
  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }
  [[nodiscard]] bool Contains(std::string_view key) const;
  [[nodiscard]] size_t size() const { return index_.size(); }
  [[nodiscard]] bool empty() const { return index_.empty(); }

  /// Total appended records before deduplication (diagnostics).
  [[nodiscard]] size_t raw_record_count() const { return raw_records_; }

  /// Marks `key` as handled (Algorithm 1, line 8: "Dj = Dj - k"). O(1).
  void Remove(std::string_view key);

 private:
  std::vector<std::string> keys_;
  // Mirror of keys_ for O(1) membership: clients consult Contains() on every
  // read while a fragment is in recovery mode (Algorithm 1, line 1), and a
  // dirty list can hold hundreds of thousands of keys (Section 5.5).
  std::unordered_set<std::string> index_;
  size_t raw_records_ = 0;
};

}  // namespace gemini
