// Random number generation and the statistical distributions used by the
// workload generators.
//
// The evaluation (Section 5) needs:
//  - Zipfian key popularity ("highly skewed", YCSB-style) — implemented with
//    the Gray et al. rejection-inversion-free algorithm that YCSB uses,
//    including the "scrambled" variant that decorrelates rank from key id.
//  - Facebook key/value size models (Atikoglu et al., SIGMETRICS'12): key
//    sizes follow a Generalized Extreme Value distribution and value sizes a
//    Generalized Pareto distribution; the paper quotes their means (36 B keys,
//    329 B values).
//  - Exponential inter-arrival times (mean 19 us in the Facebook trace).
//
// All generators are deterministic functions of their seed so that every
// experiment replays bit-identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/hash.h"

namespace gemini {

/// xoshiro256** by Blackman & Vigna — fast, high quality, 2^256-1 period.
/// Seeded via SplitMix64 as its authors recommend.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      word = Mix64(x);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift with rejection for unbiased results.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Exponential with the given mean (> 0).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log1p(-u);
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

/// Zipfian over {0, ..., n-1} with skew parameter theta in (0, 1) —
/// the algorithm from Gray et al. "Quickly Generating Billion-Record
/// Synthetic Databases" used by YCSB. Item 0 is the most popular.
///
/// YCSB's default theta is 0.99 ("highly skewed"); the paper's "alpha = 100"
/// denotes the same YCSB skew knob family — see EXPERIMENTS.md for the
/// calibration note.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta = 0.99);

  /// Draws a rank in [0, n); rank 0 is most popular.
  uint64_t Next(Rng& rng) const;

  [[nodiscard]] uint64_t n() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Scrambled Zipfian: Zipfian ranks mapped through a mixing function so that
/// popular keys are spread uniformly over the key space (and hence over
/// fragments/instances), as in YCSB.
class ScrambledZipfian {
 public:
  ScrambledZipfian(uint64_t n, double theta = 0.99) : zipf_(n, theta), n_(n) {}

  uint64_t Next(Rng& rng) const { return Mix64(zipf_.Next(rng)) % n_; }

  [[nodiscard]] uint64_t n() const { return n_; }

 private:
  Zipfian zipf_;
  uint64_t n_;
};

/// Generalized Pareto distribution (location mu, scale sigma, shape xi),
/// sampled by inversion. Atikoglu et al. model Facebook USR value sizes with
/// GPD(mu=0, sigma=214.476, xi=0.348238).
class GeneralizedPareto {
 public:
  GeneralizedPareto(double mu, double sigma, double xi)
      : mu_(mu), sigma_(sigma), xi_(xi) {}

  double Next(Rng& rng) const {
    double u = rng.NextDouble();
    if (u >= 1.0) u = 1.0 - 0x1.0p-53;
    if (std::abs(xi_) < 1e-12) {
      return mu_ - sigma_ * std::log1p(-u);
    }
    return mu_ + sigma_ * (std::pow(1.0 - u, -xi_) - 1.0) / xi_;
  }

 private:
  double mu_, sigma_, xi_;
};

/// Generalized Extreme Value distribution, sampled by inversion. Atikoglu et
/// al. model Facebook key sizes with GEV(mu=30.7984, sigma=8.20449,
/// xi=0.078688).
class GeneralizedExtremeValue {
 public:
  GeneralizedExtremeValue(double mu, double sigma, double xi)
      : mu_(mu), sigma_(sigma), xi_(xi) {}

  double Next(Rng& rng) const {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    if (u >= 1.0) u = 1.0 - 0x1.0p-53;
    double ln = -std::log(u);
    if (std::abs(xi_) < 1e-12) {
      return mu_ - sigma_ * std::log(ln);
    }
    return mu_ + sigma_ * (std::pow(ln, -xi_) - 1.0) / xi_;
  }

 private:
  double mu_, sigma_, xi_;
};

}  // namespace gemini
