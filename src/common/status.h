// Error handling primitives: Status and Result<T>.
//
// Gemini's request paths are hot (millions of simulated operations per run),
// so error handling is value-based rather than exception-based. The error
// vocabulary mirrors the protocol: a cache miss, a lease back-off, and a
// stale client configuration are all *expected* outcomes that callers branch
// on, not failures.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace gemini {

/// Numeric values are frozen: they travel as wire response tags
/// (docs/PROTOCOL.md §10.4). Append new codes; never renumber.
enum class Code : uint8_t {
  kOk = 0,
  /// Key not present (a cache miss, or store key never written).
  kNotFound,
  /// Caller must back off and retry: an incompatible lease exists
  /// (Table 2: I requested while I or Q held; Redlease while Redlease held).
  kBackoff,
  /// The client's cached configuration id is older than the instance's;
  /// the client must refresh its configuration and retry (Rejig).
  kStaleConfig,
  /// The target instance is unavailable (failed / not yet recovered).
  kUnavailable,
  /// The lease supplied with the operation is no longer valid (expired or
  /// voided by a Q lease); the operation was ignored.
  kLeaseInvalid,
  /// The operation references a fragment this instance does not hold a valid
  /// fragment lease for.
  kWrongInstance,
  /// The write was suspended: its fragment's primary is down and the
  /// coordinator has not yet published a secondary replica (Section 2.2).
  /// The caller retries once a new configuration is available.
  kSuspended,
  /// Malformed request or programming error.
  kInvalidArgument,
  /// Internal invariant violation.
  kInternal,
  /// The addressed coordinator process is a shadow (or a fenced ex-master)
  /// and refuses to serve or mutate coordinator state. The caller should
  /// redial the next coordinator endpoint; the state it asked about was not
  /// touched (docs/PROTOCOL.md §12.7).
  kNotMaster,
};

std::string_view CodeName(Code code);

/// A cheap, copyable status. Ok statuses carry no allocation.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code code) : code_(code) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string message_;
};

/// Result<T>: either a value or a non-ok Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  Result(Code code) : status_(code) {}  // NOLINT

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] Code code() const {
    return ok() ? Code::kOk : status_.code();
  }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace gemini
