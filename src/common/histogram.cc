#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gemini {

Histogram::Histogram(int64_t max_value, int buckets_per_decade) {
  log_base_ = std::log(10.0) / buckets_per_decade;
  num_buckets_ =
      static_cast<size_t>(std::log(static_cast<double>(max_value)) /
                          log_base_) +
      2;
  buckets_.assign(num_buckets_, 0);
}

size_t Histogram::BucketIndex(int64_t value) const {
  if (value <= 1) return 0;
  auto idx = static_cast<size_t>(std::log(static_cast<double>(value)) /
                                 log_base_) +
             1;
  return std::min(idx, num_buckets_ - 1);
}

double Histogram::BucketLowerBound(size_t index) const {
  if (index == 0) return 0.0;
  return std::exp(static_cast<double>(index - 1) * log_base_);
}

void Histogram::Record(int64_t value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketIndex(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  const size_t n = std::min(buckets_.size(), other.buckets_.size());
  for (size_t i = 0; i < n; ++i) buckets_[i] += other.buckets_[i];
  // Spill any out-of-range tail into our last bucket.
  for (size_t i = n; i < other.buckets_.size(); ++i) {
    buckets_.back() += other.buckets_[i];
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target && buckets_[i] > 0) {
      const double lo = BucketLowerBound(i);
      const double hi = BucketLowerBound(i + 1);
      const double frac =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    cumulative = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%lld",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(0.50), Percentile(0.90), Percentile(0.99),
                static_cast<long long>(Max()));
  return buf;
}

}  // namespace gemini
