// Per-interval counters for time-series plots.
//
// Every timeline figure in the paper (Figures 1, 6, 7, 10) plots a per-second
// quantity: stale reads/second, cache hit ratio, throughput, p90 latency.
// TimeSeries buckets raw events by a fixed interval of *virtual* time and
// exposes the aggregated series for printing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"

namespace gemini {

/// Counts events per fixed interval (default: 1 virtual second).
class CounterSeries {
 public:
  explicit CounterSeries(Duration interval = kSecond) : interval_(interval) {}

  void Add(Timestamp t, uint64_t n = 1);

  /// Count in the interval containing `t` so far.
  [[nodiscard]] uint64_t At(Timestamp t) const;

  /// All intervals from 0 to the last recorded one.
  [[nodiscard]] const std::vector<uint64_t>& buckets() const {
    return buckets_;
  }
  [[nodiscard]] Duration interval() const { return interval_; }
  [[nodiscard]] uint64_t Total() const;

 private:
  Duration interval_;
  std::vector<uint64_t> buckets_;
};

/// Ratio of two event streams per interval — e.g. hits / (hits + misses).
class RatioSeries {
 public:
  explicit RatioSeries(Duration interval = kSecond)
      : num_(interval), den_(interval) {}

  void AddNumerator(Timestamp t, uint64_t n = 1) { num_.Add(t, n); }
  void AddDenominator(Timestamp t, uint64_t n = 1) { den_.Add(t, n); }

  /// Ratio per interval; intervals with a zero denominator report
  /// `empty_value` (default 0).
  [[nodiscard]] std::vector<double> Ratios(double empty_value = 0.0) const;

  /// Ratio over intervals [from_bucket, to_bucket); 0 if empty.
  [[nodiscard]] double RatioBetween(size_t from_bucket,
                                    size_t to_bucket) const;

  [[nodiscard]] const CounterSeries& numerator() const { return num_; }
  [[nodiscard]] const CounterSeries& denominator() const { return den_; }

 private:
  CounterSeries num_;
  CounterSeries den_;
};

/// Per-interval latency distribution (for p90-per-second plots).
class LatencySeries {
 public:
  explicit LatencySeries(Duration interval = kSecond) : interval_(interval) {}

  void Record(Timestamp t, int64_t latency_us);

  [[nodiscard]] std::vector<double> Percentiles(double q) const;
  [[nodiscard]] std::vector<double> Means() const;
  [[nodiscard]] size_t NumBuckets() const { return hists_.size(); }
  [[nodiscard]] const Histogram* Bucket(size_t i) const {
    return i < hists_.size() ? &hists_[i] : nullptr;
  }

 private:
  Duration interval_;
  std::vector<Histogram> hists_;
};

/// Renders aligned columns: one row per interval. Used by the figure benches
/// to print the same series the paper plots.
std::string FormatSeriesTable(
    const std::vector<std::string>& column_names,
    const std::vector<std::vector<double>>& columns,
    Duration interval = kSecond);

}  // namespace gemini
