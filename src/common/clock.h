// Time abstraction.
//
// Every time-dependent mechanism in Gemini — IQ lease lifetimes (ms),
// Redlease lifetimes (ms), fragment leases (seconds), failure detection,
// working-set-transfer monitoring — reads time through the Clock interface.
// Production code would bind SystemClock; the experiment harness binds
// VirtualClock so that the paper's 250-second experiments replay
// deterministically in a fraction of wall-clock time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gemini {

/// Microseconds since an arbitrary epoch. Signed so that durations and
/// differences are natural to compute.
using Timestamp = int64_t;
using Duration = int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

constexpr Duration Micros(int64_t n) { return n; }
constexpr Duration Millis(int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(double n) {
  return static_cast<Duration>(n * static_cast<double>(kSecond));
}
constexpr double ToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Timestamp Now() const = 0;
};

/// Wall-clock time (steady, monotonic).
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Timestamp Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// A process-wide instance, convenient for tests and examples.
  static SystemClock& Global();
};

/// Deterministic, manually advanced clock used by the discrete-event
/// simulator. Thread-safe: tests advance it from one thread while worker
/// threads read it.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  [[nodiscard]] Timestamp Now() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceTo(Timestamp t) { now_.store(t, std::memory_order_relaxed); }
  void Advance(Duration d) { now_.fetch_add(d, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace gemini
