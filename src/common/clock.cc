#include "src/common/clock.h"

namespace gemini {

SystemClock& SystemClock::Global() {
  static SystemClock clock;
  return clock;
}

}  // namespace gemini
