// Hashing utilities.
//
// The Gemini client maps a key to a fragment with
//   fragment = hash(key) % F        (Section 4)
// so the hash must be stable across clients, instances, and runs — never use
// std::hash for routing (it is implementation-defined and per-process
// seedable). FNV-1a 64-bit is stable, allocation-free, and fast for the short
// keys (tens of bytes) this workload generates.
#pragma once

#include <cstdint>
#include <string_view>

namespace gemini {

constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

constexpr uint64_t Fnv1a64(std::string_view data,
                           uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Finalizer from SplitMix64 — turns a weakly mixed integer into a well
/// distributed one. Used to scramble sequential record ids into a key space
/// (YCSB's "scrambled Zipfian").
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace gemini
