// Hashing utilities.
//
// The Gemini client maps a key to a fragment with
//   fragment = hash(key) % F        (Section 4)
// so the hash must be stable across clients, instances, and runs — never use
// std::hash for routing (it is implementation-defined and per-process
// seedable). FNV-1a 64-bit is stable, allocation-free, and fast for the short
// keys (tens of bytes) this workload generates.
#pragma once

#include <cstdint>
#include <string_view>

namespace gemini {

constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

constexpr uint64_t Fnv1a64(std::string_view data,
                           uint64_t seed = kFnvOffsetBasis) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Finalizer from SplitMix64 — turns a weakly mixed integer into a well
/// distributed one. Used to scramble sequential record ids into a key space
/// (YCSB's "scrambled Zipfian").
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

namespace internal {

/// CRC-32C (Castagnoli) lookup table, built at compile time. The reflected
/// polynomial 0x82F63B78 is the one SSE4.2's crc32 instruction implements,
/// so a hardware fast path can be swapped in later without changing any
/// on-disk format.
struct Crc32cTable {
  uint32_t t[256]{};
  constexpr Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};
inline constexpr Crc32cTable kCrc32cTable{};

#if defined(__x86_64__) || defined(__i386__)
/// SSE4.2 crc32 instruction path: ~0.3 cycles/byte vs ~3 for the table.
/// Compiled with a per-function target so the translation unit needs no
/// global -msse4.2; only ever called after a cpuid check.
__attribute__((target("sse4.2"))) inline uint32_t Crc32cHw(
    std::string_view data, uint32_t c) {
  const char* p = data.data();
  size_t n = data.size();
#if defined(__x86_64__)
  uint64_t c64 = c;
  for (; n >= 8; p += 8, n -= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    c64 = __builtin_ia32_crc32di(c64, chunk);
  }
  c = static_cast<uint32_t>(c64);
#endif
  for (; n > 0; ++p, --n) {
    c = __builtin_ia32_crc32qi(c, static_cast<uint8_t>(*p));
  }
  return c;
}

inline bool Crc32cHwSupported() {
  static const bool supported = __builtin_cpu_supports("sse4.2");
  return supported;
}
#endif  // x86

}  // namespace internal

/// Table-driven CRC-32C — the portable reference the hardware path must
/// match bit for bit (persist_wal_test cross-checks them).
constexpr uint32_t Crc32cSoftware(std::string_view data, uint32_t seed = 0) {
  uint32_t c = ~seed;
  for (char ch : data) {
    c = internal::kCrc32cTable.t[(c ^ static_cast<uint8_t>(ch)) & 0xFF] ^
        (c >> 8);
  }
  return ~c;
}

/// CRC-32C over `data`. Unlike Fnv1a64 (a fast hash), this is an error-
/// detecting code with guaranteed Hamming distance on short records — the
/// right tool for framing the write-ahead log, where single-bit rot and torn
/// sector tails must be caught, not just "probably caught". Uses the SSE4.2
/// crc32 instruction when the CPU has it.
inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
#if defined(__x86_64__) || defined(__i386__)
  if (internal::Crc32cHwSupported()) {
    return ~internal::Crc32cHw(data, ~seed);
  }
#endif
  return Crc32cSoftware(data, seed);
}

}  // namespace gemini
