// Log-bucketed latency histogram.
//
// The evaluation reports mean, 90th, and 99th percentile read latencies
// (Figure 7.c, Section 5.4.1). Buckets grow geometrically so that the whole
// microsecond-to-second range is covered with bounded relative error and O(1)
// record cost; percentile queries interpolate within a bucket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gemini {

class Histogram {
 public:
  /// Covers [1, max_value] microseconds with `buckets_per_decade` geometric
  /// buckets per 10x range (relative error ~ 10^(1/buckets_per_decade)).
  explicit Histogram(int64_t max_value = 60LL * 1000 * 1000,
                     int buckets_per_decade = 40);

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] double Mean() const;
  [[nodiscard]] int64_t Min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] int64_t Max() const { return count_ == 0 ? 0 : max_; }

  /// q in [0, 1]; e.g. Percentile(0.90) is the p90.
  [[nodiscard]] double Percentile(double q) const;

  [[nodiscard]] std::string Summary() const;

 private:
  [[nodiscard]] size_t BucketIndex(int64_t value) const;
  [[nodiscard]] double BucketLowerBound(size_t index) const;

  double log_base_;
  size_t num_buckets_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace gemini
