#include "src/common/time_series.h"

#include <algorithm>
#include <cstdio>

namespace gemini {

namespace {
size_t BucketFor(Timestamp t, Duration interval) {
  if (t < 0) return 0;
  return static_cast<size_t>(t / interval);
}
}  // namespace

void CounterSeries::Add(Timestamp t, uint64_t n) {
  const size_t b = BucketFor(t, interval_);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  buckets_[b] += n;
}

uint64_t CounterSeries::At(Timestamp t) const {
  const size_t b = BucketFor(t, interval_);
  return b < buckets_.size() ? buckets_[b] : 0;
}

uint64_t CounterSeries::Total() const {
  uint64_t total = 0;
  for (uint64_t v : buckets_) total += v;
  return total;
}

std::vector<double> RatioSeries::Ratios(double empty_value) const {
  const auto& n = num_.buckets();
  const auto& d = den_.buckets();
  const size_t size = std::max(n.size(), d.size());
  std::vector<double> out(size, empty_value);
  for (size_t i = 0; i < size; ++i) {
    const uint64_t den = i < d.size() ? d[i] : 0;
    if (den == 0) continue;
    const uint64_t num = i < n.size() ? n[i] : 0;
    out[i] = static_cast<double>(num) / static_cast<double>(den);
  }
  return out;
}

double RatioSeries::RatioBetween(size_t from_bucket, size_t to_bucket) const {
  const auto& n = num_.buckets();
  const auto& d = den_.buckets();
  uint64_t num = 0, den = 0;
  for (size_t i = from_bucket; i < to_bucket; ++i) {
    if (i < n.size()) num += n[i];
    if (i < d.size()) den += d[i];
  }
  return den == 0 ? 0.0
                  : static_cast<double>(num) / static_cast<double>(den);
}

void LatencySeries::Record(Timestamp t, int64_t latency_us) {
  const size_t b = BucketFor(t, interval_);
  while (hists_.size() <= b) hists_.emplace_back();
  hists_[b].Record(latency_us);
}

std::vector<double> LatencySeries::Percentiles(double q) const {
  std::vector<double> out;
  out.reserve(hists_.size());
  for (const auto& h : hists_) out.push_back(h.Percentile(q));
  return out;
}

std::vector<double> LatencySeries::Means() const {
  std::vector<double> out;
  out.reserve(hists_.size());
  for (const auto& h : hists_) out.push_back(h.Mean());
  return out;
}

std::string FormatSeriesTable(const std::vector<std::string>& column_names,
                              const std::vector<std::vector<double>>& columns,
                              Duration interval) {
  std::string out;
  char buf[64];
  out += "  sec";
  for (const auto& name : column_names) {
    std::snprintf(buf, sizeof(buf), " %14s", name.c_str());
    out += buf;
  }
  out += '\n';
  size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (size_t r = 0; r < rows; ++r) {
    std::snprintf(buf, sizeof(buf), "%5.0f",
                  static_cast<double>(r) * ToSeconds(interval));
    out += buf;
    for (const auto& c : columns) {
      if (r < c.size()) {
        std::snprintf(buf, sizeof(buf), " %14.3f", c[r]);
      } else {
        std::snprintf(buf, sizeof(buf), " %14s", "-");
      }
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace gemini
