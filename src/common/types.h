// Core identifier types shared across all Gemini modules.
//
// The paper (Section 2, Table 1) defines the vocabulary used throughout this
// code base: an *instance* is a process storing cache entries persistently, a
// *fragment* is a subset of cache entries assigned to an instance, and a
// *configuration* is an assignment of fragments to instances identified by a
// monotonically increasing id.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace gemini {

/// Identifies a cache instance. Instances are numbered densely from 0 within
/// a cluster; the paper's "Instance-M:L" (server M, local index L) flattens to
/// a single integer here because servers are not a protocol-visible concept.
using InstanceId = uint32_t;

/// Identifies a fragment, i.e. a cell of the configuration (Figure 3).
using FragmentId = uint32_t;

/// A monotonically increasing configuration id published by the coordinator
/// (Table 1). Also stamped on every cache entry at insert time; the Rejig
/// validity rule compares an entry's id with its fragment's id.
using ConfigId = uint64_t;

/// Version number of a key in the backing data store. Incremented on every
/// acknowledged write; used by the consistency checker to detect stale reads.
using Version = uint64_t;

/// Lease token handed out by a cache instance for I, Q, and Red leases.
/// Token 0 is reserved to mean "no lease".
using LeaseToken = uint64_t;

inline constexpr LeaseToken kNoLease = 0;

inline constexpr InstanceId kInvalidInstance =
    std::numeric_limits<InstanceId>::max();

inline constexpr FragmentId kInvalidFragment =
    std::numeric_limits<FragmentId>::max();

/// Reserved key prefix for Gemini-internal cache entries (dirty lists and the
/// published configuration). Application keys must not start with this.
inline constexpr char kInternalKeyPrefix[] = "__gemini__";

/// Key under which a fragment's dirty list is stored in the instance hosting
/// its secondary replica (Section 3.1: "The dirty list is represented as a
/// cache entry").
std::string DirtyListKey(FragmentId fragment);

/// Key under which the coordinator inserts the latest configuration as a
/// cache entry in impacted instances (Section 2.1).
std::string ConfigKey();

inline std::string DirtyListKey(FragmentId fragment) {
  return std::string(kInternalKeyPrefix) + "/dirty/" + std::to_string(fragment);
}

inline std::string ConfigKey() {
  return std::string(kInternalKeyPrefix) + "/config";
}

}  // namespace gemini
