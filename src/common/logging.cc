#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gemini {

namespace {

LogLevel InitialLevel() {
  const char* env = std::getenv("GEMINI_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level(static_cast<int>(InitialLevel()));
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel LogState::Level() {
  return static_cast<LogLevel>(LevelStorage().load(std::memory_order_relaxed));
}

void LogState::SetLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogState::Write(LogLevel level, const char* file, int line,
                     const std::string& message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file),
               line, message.c_str());
}

}  // namespace gemini
