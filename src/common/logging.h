// Minimal leveled logging.
//
// The simulator runs millions of operations, so logging defaults to kWarn and
// every macro checks the level before evaluating its arguments. Experiments
// raise verbosity with GEMINI_LOG=info|debug or LogState::SetLevel.
#pragma once

#include <sstream>
#include <string>

namespace gemini {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class LogState {
 public:
  static LogLevel Level();
  static void SetLevel(LogLevel level);

  /// Writes one formatted line to stderr. Thread-safe.
  static void Write(LogLevel level, const char* file, int line,
                    const std::string& message);
};

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogState::Write(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define GEMINI_LOG(level)                                              \
  if (::gemini::LogLevel::level < ::gemini::LogState::Level()) {       \
  } else                                                               \
    ::gemini::internal::LogMessage(::gemini::LogLevel::level, __FILE__, \
                                   __LINE__)                            \
        .stream()

#define LOG_DEBUG GEMINI_LOG(kDebug)
#define LOG_INFO GEMINI_LOG(kInfo)
#define LOG_WARN GEMINI_LOG(kWarn)
#define LOG_ERROR GEMINI_LOG(kError)

}  // namespace gemini
