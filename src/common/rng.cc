#include "src/common/rng.h"

#include <cassert>

namespace gemini {

Zipfian::Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double Zipfian::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t Zipfian::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace gemini
