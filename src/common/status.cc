#include "src/common/status.h"

namespace gemini {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kBackoff:
      return "BACKOFF";
    case Code::kStaleConfig:
      return "STALE_CONFIG";
    case Code::kUnavailable:
      return "UNAVAILABLE";
    case Code::kLeaseInvalid:
      return "LEASE_INVALID";
    case Code::kWrongInstance:
      return "WRONG_INSTANCE";
    case Code::kSuspended:
      return "SUSPENDED";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kInternal:
      return "INTERNAL";
    case Code::kNotMaster:
      return "NOT_MASTER";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gemini
