// StaleReadChecker: an online read-after-write consistency auditor.
//
// The paper verifies Gemini with Polygraph [3] and motivates the protocol
// with Figure 1: the number of reads per second that violate read-after-write
// consistency after instances recover with stale content. This checker
// implements exactly that anomaly class:
//
//   A read is *stale* iff the version of the value it returns is older than
//   the version installed by the last acknowledged write of that key.
//
// The data store is the system of record and assigns versions; cache values
// carry the version of the store state they were computed from. Because the
// discrete-event harness executes sessions atomically in virtual-time order,
// the comparison is exact (no in-flight ambiguity); threaded callers should
// pass the version they observed *before* issuing dependent writes.
#pragma once

#include <cstdint>
#include <string_view>

#include "src/common/clock.h"
#include "src/common/time_series.h"
#include "src/common/types.h"
#include "src/store/data_store.h"

namespace gemini {

class StaleReadChecker {
 public:
  explicit StaleReadChecker(const DataStore* store,
                            Duration interval = kSecond)
      : store_(store), reads_(interval), stale_(interval) {}

  /// Audits a completed read of `key` that returned `observed` as its
  /// version. Returns true iff the read was stale.
  bool OnRead(Timestamp t, std::string_view key, Version observed);

  [[nodiscard]] uint64_t total_reads() const { return reads_.Total(); }
  [[nodiscard]] uint64_t total_stale() const { return stale_.Total(); }
  [[nodiscard]] const CounterSeries& reads_per_interval() const {
    return reads_;
  }
  [[nodiscard]] const CounterSeries& stale_per_interval() const {
    return stale_;
  }

 private:
  const DataStore* store_;
  CounterSeries reads_;
  CounterSeries stale_;
};

}  // namespace gemini
