// InvariantAuditor: structural whole-cluster invariants.
//
// Complements the StaleReadChecker (which audits the *data* plane) by
// auditing the *control* plane: after any sequence of failures, recoveries,
// and coordinator transitions, the assignment state must satisfy the
// invariants below, or the protocol's consistency argument no longer holds.
//
//   I1  Every fragment's mode/replica combination is well-formed: normal
//       fragments have no secondary; transient fragments have a live
//       secondary distinct from the primary.
//   I2  Replica exclusivity: an instance holds a fragment lease only if the
//       current configuration names it a serving replica of that fragment
//       (stragglers must have been revoked).
//   I3  Dirty-list placement: under a dirty-list-maintaining policy, every
//       transient fragment has its (marker-valid) dirty list in its
//       secondary — otherwise recovery would silently produce stale data.
//   I4  Rejig monotonicity: every fragment's config id is at most the
//       published configuration's id.
//   I5  Entry validity scope: no *servable* entry of a sampled key set
//       predates its fragment's minimum-valid id (the instance-side check
//       enforces this lazily; the auditor verifies the lazy path cannot
//       leak).
//
// The auditor reads through the same public interfaces a debugging operator
// would; it never mutates state (sampled gets use raw introspection, not the
// serving path).
#pragma once

#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/coordinator/configuration.h"

namespace gemini {

struct InvariantViolation {
  std::string invariant;  // "I1".."I5"
  std::string detail;
};

class InvariantAuditor {
 public:
  /// `maintain_dirty_lists` gates I3 (baselines legitimately have none).
  InvariantAuditor(std::vector<CacheInstance*> instances,
                   bool maintain_dirty_lists)
      : instances_(std::move(instances)),
        maintain_dirty_lists_(maintain_dirty_lists) {}

  /// Audits `config` against the instances. `sample_keys` feeds I5 (pass the
  /// key universe or a sample of it; empty skips I5).
  std::vector<InvariantViolation> Audit(
      const Configuration& config,
      const std::vector<std::string>& sample_keys = {}) const;

  /// Convenience: true iff Audit() returns nothing.
  bool Clean(const Configuration& config,
             const std::vector<std::string>& sample_keys = {}) const {
    return Audit(config, sample_keys).empty();
  }

 private:
  std::vector<CacheInstance*> instances_;
  bool maintain_dirty_lists_;
};

}  // namespace gemini
