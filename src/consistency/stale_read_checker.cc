#include "src/consistency/stale_read_checker.h"

namespace gemini {

bool StaleReadChecker::OnRead(Timestamp t, std::string_view key,
                              Version observed) {
  reads_.Add(t);
  const Version current = store_->VersionOf(key);
  const bool stale = observed < current;
  if (stale) stale_.Add(t);
  return stale;
}

}  // namespace gemini
