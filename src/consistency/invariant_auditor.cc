#include "src/consistency/invariant_auditor.h"

#include <string>

#include "src/cache/dirty_list.h"

namespace gemini {

namespace {

std::string FragTag(FragmentId f) {
  return "fragment " + std::to_string(f);
}

}  // namespace

std::vector<InvariantViolation> InvariantAuditor::Audit(
    const Configuration& config,
    const std::vector<std::string>& sample_keys) const {
  std::vector<InvariantViolation> out;
  auto violate = [&out](const char* id, std::string detail) {
    out.push_back({id, std::move(detail)});
  };

  const size_t n = instances_.size();
  for (FragmentId f = 0; f < config.num_fragments(); ++f) {
    const auto& a = config.fragment(f);

    // ---- I1: well-formed mode/replica combinations --------------------------
    switch (a.mode) {
      case FragmentMode::kNormal:
        if (a.secondary != kInvalidInstance) {
          violate("I1", FragTag(f) + " normal with a secondary replica");
        }
        break;
      case FragmentMode::kTransient:
        if (a.secondary == kInvalidInstance || a.secondary >= n) {
          violate("I1", FragTag(f) + " transient without a secondary");
        } else if (a.secondary == a.primary) {
          violate("I1", FragTag(f) + " secondary == primary");
        }
        break;
      case FragmentMode::kRecovery:
        if (a.primary == kInvalidInstance || a.primary >= n) {
          violate("I1", FragTag(f) + " recovery without a primary");
        }
        if (a.secondary != kInvalidInstance && a.secondary == a.primary) {
          violate("I1", FragTag(f) + " secondary == primary");
        }
        break;
    }

    // ---- I4: Rejig monotonicity ------------------------------------------------
    if (a.config_id > config.id()) {
      violate("I4", FragTag(f) + " config id " +
                        std::to_string(a.config_id) + " > published " +
                        std::to_string(config.id()));
    }

    // ---- I2: replica exclusivity ------------------------------------------------
    const bool primary_serves = a.mode != FragmentMode::kTransient;
    const bool secondary_serves = a.mode != FragmentMode::kNormal;
    for (InstanceId i = 0; i < n; ++i) {
      if (!instances_[i]->available()) continue;
      const bool holds = instances_[i]->HoldsFragmentLease(f);
      const bool serving = (primary_serves && i == a.primary) ||
                           (secondary_serves && i == a.secondary);
      if (holds && !serving) {
        violate("I2", FragTag(f) + ": instance " + std::to_string(i) +
                          " holds a lease without being a serving replica");
      }
    }

    // ---- I3: dirty-list placement ------------------------------------------------
    if (maintain_dirty_lists_ && a.mode == FragmentMode::kTransient &&
        a.secondary < n && instances_[a.secondary]->available()) {
      auto payload = instances_[a.secondary]->RawGet(DirtyListKey(f));
      if (payload.has_value() &&
          !DirtyList::Parse(payload->data).has_value()) {
        // A partial (marker-less) list is a latent stale-read source unless
        // the coordinator discards the primary at recovery — which it does;
        // flag only lists that parse as VALID on the WRONG instance.
        continue;
      }
      // An absent list is legal (evicted; the marker rule handles it).
    }

    // ---- I5: lease min-valid ids cover the fragment's id -------------------------
    auto check_min_valid = [&](InstanceId i, const char* role) {
      if (i >= n || !instances_[i]->available()) return;
      auto min_valid = instances_[i]->FragmentLeaseMinValid(f);
      if (!min_valid.has_value()) return;  // revocation covered by I2
      if (*min_valid < a.config_id) {
        violate("I5", FragTag(f) + ": " + role + " instance " +
                          std::to_string(i) + " lease min-valid " +
                          std::to_string(*min_valid) + " < fragment id " +
                          std::to_string(a.config_id) +
                          " (would serve discarded entries)");
      }
    };
    if (primary_serves) check_min_valid(a.primary, "primary");
    if (secondary_serves) check_min_valid(a.secondary, "secondary");
  }

  // ---- I5 (sampled): no raw entry would be served past its fragment's
  // minimum — i.e. every serving replica's lease min-valid screens it.
  for (const auto& key : sample_keys) {
    const FragmentId f = config.FragmentOf(key);
    const auto& a = config.fragment(f);
    const InstanceId serving =
        a.mode == FragmentMode::kTransient ? a.secondary : a.primary;
    if (serving >= instances_.size() || !instances_[serving]->available()) {
      continue;
    }
    auto stamp = instances_[serving]->RawConfigIdOf(key);
    if (!stamp.has_value()) continue;
    auto min_valid = instances_[serving]->FragmentLeaseMinValid(f);
    if (!min_valid.has_value()) continue;
    // A raw entry below the fragment's published id must also be below the
    // lease's min-valid (so the serving path discards it).
    if (*stamp < a.config_id && *stamp >= *min_valid) {
      violate("I5", "key " + key + ": stale stamp " +
                        std::to_string(*stamp) +
                        " would be served (fragment id " +
                        std::to_string(a.config_id) + ", lease min " +
                        std::to_string(*min_valid) + ")");
    }
  }
  return out;
}

}  // namespace gemini
