#include "src/coordinator/coordinator_group.h"

namespace gemini {

CoordinatorGroup::CoordinatorGroup(const Clock* clock,
                                   std::vector<CacheInstance*> instances,
                                   size_t num_fragments, size_t num_shadows,
                                   Coordinator::Options options)
    : clock_(clock), instances_(std::move(instances)), options_(options) {
  std::lock_guard<std::mutex> lock(mu_);
  master_ = std::make_unique<Coordinator>(clock_, instances_, num_fragments,
                                          options_);
  shadows_.resize(num_shadows);
  ReplicateLocked();
}

void CoordinatorGroup::ReplicateLocked() {
  if (master_ == nullptr || shadows_.empty()) return;
  const CoordinatorState state = master_->ExportState();
  for (auto& shadow : shadows_) shadow = state;
}

ConfigurationPtr CoordinatorGroup::GetConfiguration() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ == nullptr ? nullptr : master_->GetConfiguration();
}

ConfigId CoordinatorGroup::latest_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ == nullptr ? 0 : master_->latest_id();
}

void CoordinatorGroup::OnDirtyListProcessed(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ == nullptr) return;
  master_->OnDirtyListProcessed(fragment);
  ReplicateLocked();
}

void CoordinatorGroup::OnWorkingSetTransferTerminated(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ == nullptr) return;
  master_->OnWorkingSetTransferTerminated(fragment);
  ReplicateLocked();
}

void CoordinatorGroup::OnDirtyListUnavailable(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ == nullptr) return;
  master_->OnDirtyListUnavailable(fragment);
  ReplicateLocked();
}

bool CoordinatorGroup::DirtyProcessed(FragmentId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ != nullptr && master_->DirtyProcessed(fragment);
}

void CoordinatorGroup::OnInstanceFailed(InstanceId failed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ == nullptr) return;
  master_->OnInstanceFailed(failed);
  ReplicateLocked();
}

void CoordinatorGroup::OnInstancesFailed(
    const std::vector<InstanceId>& failed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ == nullptr) return;
  master_->OnInstancesFailed(failed);
  ReplicateLocked();
}

void CoordinatorGroup::OnInstanceRecovered(InstanceId recovered) {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ == nullptr) return;
  master_->OnInstanceRecovered(recovered);
  ReplicateLocked();
}

void CoordinatorGroup::RenewLeases() {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ != nullptr) master_->RenewLeases();
}

FragmentMode CoordinatorGroup::ModeOf(FragmentId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ == nullptr ? FragmentMode::kNormal
                            : master_->ModeOf(fragment);
}

std::vector<FragmentId> CoordinatorGroup::FragmentsWithPrimary(
    InstanceId instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ == nullptr ? std::vector<FragmentId>{}
                            : master_->FragmentsWithPrimary(instance);
}

std::vector<FragmentId> CoordinatorGroup::FragmentsInMode(
    FragmentMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ == nullptr ? std::vector<FragmentId>{}
                            : master_->FragmentsInMode(mode);
}

uint64_t CoordinatorGroup::discarded_fragment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ == nullptr ? 0 : master_->discarded_fragment_count();
}

void CoordinatorGroup::FailMaster() {
  std::lock_guard<std::mutex> lock(mu_);
  master_.reset();
}

bool CoordinatorGroup::PromoteShadow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (master_ != nullptr || shadows_.empty()) return false;
  CoordinatorState state = std::move(shadows_.back());
  shadows_.pop_back();
  // A promoted shadow adopts the replicated state and re-publishes; the
  // paper notes this mirrors RAMCloud's coordinator failover.
  master_ = std::make_unique<Coordinator>(
      clock_, instances_, state.fragments.size(), options_);
  master_->ImportState(state);
  ReplicateLocked();
  return true;
}

bool CoordinatorGroup::master_available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_ != nullptr;
}

size_t CoordinatorGroup::shadows_remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shadows_.size();
}

Coordinator* CoordinatorGroup::master() {
  std::lock_guard<std::mutex> lock(mu_);
  return master_.get();
}

}  // namespace gemini
