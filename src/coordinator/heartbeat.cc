#include "src/coordinator/heartbeat.h"

namespace gemini {

HeartbeatMonitor::HeartbeatMonitor(const Clock* clock, size_t num_instances,
                                   Options options)
    : clock_(clock), options_(options) {
  if (options_.restart_grace == 0) {
    options_.restart_grace = failure_deadline();
  }
  entries_.resize(num_instances);
}

bool HeartbeatMonitor::Register(InstanceId id) {
  if (id >= entries_.size()) return false;
  auto& e = entries_[id];
  const bool recovery_edge = e.state != State::kAlive;
  e.state = State::kAlive;
  e.last_beat = clock_->Now();
  if (recovery_edge) {
    bool queued = false;
    for (InstanceId p : pending_recovered_) queued |= (p == id);
    if (!queued) pending_recovered_.push_back(id);
  }
  return recovery_edge;
}

void HeartbeatMonitor::OnHeartbeat(InstanceId id) {
  if (id >= entries_.size()) return;
  auto& e = entries_[id];
  // A beat refreshes an alive instance and also satisfies an kExpected
  // grace window (the instance never died; the *coordinator* restarted, so
  // no re-registration — and no recovery cycle — is needed).
  if (e.state == State::kAlive || e.state == State::kExpected) {
    e.state = State::kAlive;
    e.last_beat = clock_->Now();
  }
}

void HeartbeatMonitor::ExpectRegistration(InstanceId id) {
  if (id >= entries_.size()) return;
  auto& e = entries_[id];
  e.state = State::kExpected;
  e.deadline = clock_->Now() + options_.restart_grace;
}

HeartbeatMonitor::Transitions HeartbeatMonitor::Tick(Timestamp now) {
  Transitions out;
  // Drain registration edges first: an instance that re-registered and is
  // still beating must not also be reported failed below (its last_beat is
  // fresh, so the deadline check cannot trip unless the clock jumped).
  out.recovered.swap(pending_recovered_);
  const Duration deadline = failure_deadline();
  for (InstanceId id = 0; id < entries_.size(); ++id) {
    auto& e = entries_[id];
    switch (e.state) {
      case State::kAlive:
        if (now - e.last_beat >= deadline) {
          e.state = State::kFailed;
          out.failed.push_back(id);
        }
        break;
      case State::kExpected:
        if (now >= e.deadline) {
          e.state = State::kFailed;
          out.failed.push_back(id);
        }
        break;
      case State::kUnseen:
      case State::kFailed:
        break;
    }
  }
  return out;
}

bool HeartbeatMonitor::alive(InstanceId id) const {
  if (id >= entries_.size()) return false;
  const State s = entries_[id].state;
  return s == State::kAlive || s == State::kExpected;
}

}  // namespace gemini
