#include "src/coordinator/configuration.h"

#include <charconv>
#include <cstdio>

namespace gemini {

std::string_view FragmentModeName(FragmentMode mode) {
  switch (mode) {
    case FragmentMode::kNormal:
      return "normal";
    case FragmentMode::kTransient:
      return "transient";
    case FragmentMode::kRecovery:
      return "recovery";
  }
  return "?";
}

std::string Configuration::Serialize() const {
  // Line 0: "v2 <id> <num_fragments>"; then one line per fragment:
  // "<primary> <secondary> <config_id> <mode> <epoch>".
  std::string out;
  out.reserve(16 + fragments_.size() * 28);
  char buf[112];
  std::snprintf(buf, sizeof(buf), "v2 %llu %zu\n",
                static_cast<unsigned long long>(id_), fragments_.size());
  out += buf;
  for (const auto& f : fragments_) {
    std::snprintf(buf, sizeof(buf), "%u %u %llu %u %u\n", f.primary,
                  f.secondary, static_cast<unsigned long long>(f.config_id),
                  static_cast<unsigned>(f.mode), f.epoch);
    out += buf;
  }
  return out;
}

namespace {

bool NextToken(std::string_view& in, uint64_t& out) {
  while (!in.empty() && (in.front() == ' ' || in.front() == '\n')) {
    in.remove_prefix(1);
  }
  const char* begin = in.data();
  const char* end = in.data() + in.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc()) return false;
  in.remove_prefix(static_cast<size_t>(ptr - begin));
  return true;
}

}  // namespace

std::optional<Configuration> Configuration::Deserialize(std::string_view data) {
  if (data.substr(0, 3) != "v2 ") return std::nullopt;
  data.remove_prefix(3);
  uint64_t id = 0, count = 0;
  if (!NextToken(data, id) || !NextToken(data, count)) return std::nullopt;
  if (count > (1ULL << 31)) return std::nullopt;
  std::vector<FragmentAssignment> fragments;
  fragments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t primary = 0, secondary = 0, cfg = 0, mode = 0, epoch = 0;
    if (!NextToken(data, primary) || !NextToken(data, secondary) ||
        !NextToken(data, cfg) || !NextToken(data, mode) ||
        !NextToken(data, epoch)) {
      return std::nullopt;
    }
    if (mode > static_cast<uint64_t>(FragmentMode::kRecovery)) {
      return std::nullopt;
    }
    FragmentAssignment f;
    f.primary = static_cast<InstanceId>(primary);
    f.secondary = static_cast<InstanceId>(secondary);
    f.config_id = cfg;
    f.mode = static_cast<FragmentMode>(mode);
    f.epoch = static_cast<uint32_t>(epoch);
    fragments.push_back(f);
  }
  return Configuration(id, std::move(fragments));
}

}  // namespace gemini
