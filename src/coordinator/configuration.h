// Configuration: the coordinator-published assignment of fragments to
// instances (Table 1, Figure 3).
//
// A configuration is an immutable snapshot identified by a monotonically
// increasing id. Each cell (fragment) records its primary replica, its
// secondary replica (while one exists), its mode in the fragment lifecycle
// (Figure 4), and the id of the configuration that last changed its
// assignment — the Rejig minimum-valid id against which instance-resident
// entries are validated.
//
// Clients route a key with hash(key) % F (Section 4) and cache the snapshot;
// instances store a serialized copy as a cache entry so that a freshly
// restarted client can bootstrap without contacting the coordinator.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"

namespace gemini {

/// Fragment lifecycle (Figure 4).
enum class FragmentMode : uint8_t {
  kNormal = 0,     // requests go to the primary replica
  kTransient = 1,  // primary down; secondary serves and keeps a dirty list
  kRecovery = 2,   // primary back; both replicas serve while dirty keys drain
};

std::string_view FragmentModeName(FragmentMode mode);

struct FragmentAssignment {
  InstanceId primary = kInvalidInstance;
  InstanceId secondary = kInvalidInstance;
  /// Minimum-valid configuration id for this fragment's entries (Rejig).
  ConfigId config_id = 0;
  FragmentMode mode = FragmentMode::kNormal;
  /// Bumped on every lifecycle transition of the fragment. Client-side
  /// caches derived from a fragment's state (its fetched dirty list) are
  /// valid only within one epoch: a client that never observed an
  /// intermediate transient window would otherwise keep a dirty list from
  /// an older recovery episode and miss newly dirtied keys.
  uint32_t epoch = 0;

  friend bool operator==(const FragmentAssignment&,
                         const FragmentAssignment&) = default;
};

class Configuration {
 public:
  Configuration() = default;
  Configuration(ConfigId id, std::vector<FragmentAssignment> fragments)
      : id_(id), fragments_(std::move(fragments)) {}

  [[nodiscard]] ConfigId id() const { return id_; }
  [[nodiscard]] size_t num_fragments() const { return fragments_.size(); }
  [[nodiscard]] const FragmentAssignment& fragment(FragmentId f) const {
    return fragments_.at(f);
  }
  [[nodiscard]] const std::vector<FragmentAssignment>& fragments() const {
    return fragments_;
  }

  /// Deterministic key -> fragment mapping: hash(key) % F (Section 4).
  [[nodiscard]] FragmentId FragmentOf(std::string_view key) const {
    return static_cast<FragmentId>(Fnv1a64(key) % fragments_.size());
  }

  /// Wire format for storing the configuration as a cache entry.
  [[nodiscard]] std::string Serialize() const;
  static std::optional<Configuration> Deserialize(std::string_view data);

  friend bool operator==(const Configuration&, const Configuration&) = default;

 private:
  ConfigId id_ = 0;
  std::vector<FragmentAssignment> fragments_;
};

using ConfigurationPtr = std::shared_ptr<const Configuration>;

}  // namespace gemini
