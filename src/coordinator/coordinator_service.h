// CoordinatorService: the coordinator API surface that clients and recovery
// workers depend on.
//
// Section 2.1: "Gemini's coordinator consists of one master and one or more
// shadow coordinators ... When the coordinator fails, one of the shadow
// coordinators is promoted." Client code therefore talks to an interface,
// and the repo provides three implementations at increasing deployment
// scale: a single Coordinator directly, a CoordinatorGroup that replicates
// CoordinatorState to in-process shadows and fails over transparently, and —
// for real multi-process deployments — RemoteCoordinator (src/cluster)
// talking to a replicated group of geminicoordd processes (CoordinatorReplica
// per process: master/shadow roles, rank-based election, epoch fencing;
// docs/PROTOCOL.md §12.7) with client-side endpoint failover.
#pragma once

#include "src/common/types.h"
#include "src/coordinator/configuration.h"

namespace gemini {

class CoordinatorService {
 public:
  virtual ~CoordinatorService() = default;

  /// Latest published configuration, or nullptr while no master is
  /// reachable (callers retry; reads fall through to the data store).
  [[nodiscard]] virtual ConfigurationPtr GetConfiguration() const = 0;
  [[nodiscard]] virtual ConfigId latest_id() const = 0;

  /// Recovery progress notifications (Sections 3.2.3-3.2.4).
  virtual void OnDirtyListProcessed(FragmentId fragment) = 0;
  virtual void OnWorkingSetTransferTerminated(FragmentId fragment) = 0;
  virtual void OnDirtyListUnavailable(FragmentId fragment) = 0;

  /// True iff the fragment's dirty list is already drained this episode.
  [[nodiscard]] virtual bool DirtyProcessed(FragmentId fragment) const = 0;
};

}  // namespace gemini
