#include "src/coordinator/coordinator.h"

#include <algorithm>
#include <cassert>

#include "src/cache/dirty_list.h"
#include "src/common/logging.h"

namespace gemini {

Coordinator::Coordinator(const Clock* clock,
                         std::vector<CacheInstance*> instances,
                         size_t num_fragments, Options options)
    : clock_(clock), options_(options) {
  owned_endpoints_.reserve(instances.size());
  instances_.reserve(instances.size());
  for (CacheInstance* instance : instances) {
    owned_endpoints_.push_back(
        std::make_unique<LocalInstanceEndpoint>(instance));
    instances_.push_back(owned_endpoints_.back().get());
  }
  Init(num_fragments);
}

Coordinator::Coordinator(const Clock* clock,
                         std::vector<InstanceEndpoint*> endpoints,
                         size_t num_fragments, Options options)
    : clock_(clock), instances_(std::move(endpoints)), options_(options) {
  Init(num_fragments);
}

void Coordinator::Init(size_t num_fragments) {
  assert(!instances_.empty());
  assert(num_fragments > 0);
  believed_up_.assign(instances_.size(), true);
  fragments_.resize(num_fragments);
  std::lock_guard<std::mutex> lock(mu_);
  const ConfigId id = next_config_id_++;
  for (size_t f = 0; f < num_fragments; ++f) {
    auto& st = fragments_[f];
    st.assignment.primary = static_cast<InstanceId>(f % instances_.size());
    st.assignment.secondary = kInvalidInstance;
    st.assignment.config_id = id;
    st.assignment.mode = FragmentMode::kNormal;
  }
  PublishLocked({});
}

void Coordinator::SetConfigListener(
    std::function<void(const ConfigurationPtr&)> listener) {
  std::lock_guard<std::mutex> lock(mu_);
  config_listener_ = std::move(listener);
}

ConfigurationPtr Coordinator::GetConfiguration() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

ConfigId Coordinator::latest_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_ ? published_->id() : 0;
}

bool Coordinator::InstanceAvailableLocked(InstanceId id) const {
  return id < instances_.size() && believed_up_[id] &&
         instances_[id]->available();
}

InstanceId Coordinator::NextAvailableLocked(InstanceId exclude) {
  const size_t n = instances_.size();
  for (size_t step = 0; step < n; ++step) {
    const size_t candidate = (round_robin_cursor_ + step) % n;
    if (candidate == exclude) continue;
    if (InstanceAvailableLocked(static_cast<InstanceId>(candidate))) {
      round_robin_cursor_ = candidate + 1;
      return static_cast<InstanceId>(candidate);
    }
  }
  return kInvalidInstance;
}

void Coordinator::GrantLeasesLocked(FragmentId f) {
  const auto& st = fragments_[f];
  const auto& a = st.assignment;
  // Lease lifetimes are TTLs: each endpoint converts into its own clock
  // domain (an absolute expiry would be meaningless on a remote machine).
  const Duration ttl = options_.fragment_lease_lifetime;
  const ConfigId latest = next_config_id_ - 1;
  // The serving replicas per mode (Figure 4): normal -> primary; transient ->
  // secondary; recovery -> both.
  if (a.mode != FragmentMode::kTransient && a.primary != kInvalidInstance &&
      InstanceAvailableLocked(a.primary)) {
    instances_[a.primary]->GrantLease(f, a.config_id, ttl, latest);
  }
  if (a.mode != FragmentMode::kNormal && a.secondary != kInvalidInstance &&
      InstanceAvailableLocked(a.secondary)) {
    // The secondary validates entries from its own creation id: the
    // pre-failure id restored for the primary (transition (2)) must not
    // re-validate entries this instance kept from an older tenancy of the
    // same fragment.
    const ConfigId min_valid =
        std::max(a.config_id, st.secondary_created_id);
    instances_[a.secondary]->GrantLease(f, min_valid, ttl, latest);
  }
}

void Coordinator::PublishLocked(const std::vector<InstanceId>& impacted) {
  const ConfigId id = next_config_id_ - 1;
  std::vector<FragmentAssignment> assignments;
  assignments.reserve(fragments_.size());
  for (const auto& st : fragments_) assignments.push_back(st.assignment);
  auto config = std::make_shared<Configuration>(id, std::move(assignments));

  for (FragmentId f = 0; f < static_cast<FragmentId>(fragments_.size()); ++f) {
    GrantLeasesLocked(f);
  }

  // Insert the configuration as a cache entry in the impacted instances so
  // recovering clients can bootstrap from the cache layer (Section 2.1).
  const std::string serialized = config->Serialize();
  auto insert_into = [&](InstanceId i) {
    if (i < instances_.size() && instances_[i]->available()) {
      (void)instances_[i]->Set(ConfigKey(), CacheValue::OfData(serialized));
    }
  };
  if (impacted.empty()) {
    for (InstanceId i = 0; i < instances_.size(); ++i) insert_into(i);
  } else {
    for (InstanceId i : impacted) insert_into(i);
  }
  published_ = std::move(config);
  if (config_listener_) config_listener_(published_);
}

void Coordinator::OnInstanceFailed(InstanceId failed) {
  OnInstancesFailed({failed});
}

void Coordinator::OnInstancesFailed(const std::vector<InstanceId>& failed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto is_failed = [&](InstanceId i) {
    for (InstanceId f : failed) {
      if (f == i) return true;
    }
    return false;
  };
  // Mark every victim down first so no secondary replica lands on an
  // instance failing in the same transition.
  for (InstanceId i : failed) {
    if (i < instances_.size()) believed_up_[i] = false;
  }
  const ConfigId new_id = next_config_id_++;
  std::vector<InstanceId> impacted(failed);

  // A straggler instance that was only *believed* failed (the paper emulates
  // failures this way) must stop serving its fragments immediately.
  auto revoke_if_reachable = [&](InstanceId i, FragmentId f) {
    if (i < instances_.size() && instances_[i]->available()) {
      instances_[i]->RevokeLease(f, new_id);
    }
  };

  for (FragmentId f = 0; f < static_cast<FragmentId>(fragments_.size());
       ++f) {
    auto& st = fragments_[f];
    auto& a = st.assignment;
    const bool primary_failed =
        a.primary != kInvalidInstance && is_failed(a.primary);
    const bool secondary_failed =
        a.secondary != kInvalidInstance && is_failed(a.secondary);

    if (primary_failed && a.mode == FragmentMode::kNormal) {
      // Transition (1): normal -> transient. Remember the pre-failure config
      // id so transition (2) can restore it.
      st.prefailure_config_id = a.config_id;
      const InstanceId secondary = NextAvailableLocked(a.primary);
      if (secondary == kInvalidInstance) {
        LOG_WARN << "fragment " << f << ": no instance available for a "
                 << "secondary replica; requests fall through to the store";
        revoke_if_reachable(a.primary, f);
        continue;
      }
      revoke_if_reachable(a.primary, f);
      a.secondary = secondary;
      a.mode = FragmentMode::kTransient;
      a.config_id = new_id;
      ++a.epoch;
      st.secondary_created_id = new_id;
      st.dirty_processed = false;
      st.wst_terminated = false;
      impacted.push_back(secondary);
      if (options_.policy.maintain_dirty_lists) {
        // Initialize the marker-bearing dirty list (Section 3.1).
        (void)instances_[secondary]->Set(
            DirtyListKey(f), CacheValue::OfData(DirtyList::InitialPayload()));
      }
    } else if (primary_failed && a.mode == FragmentMode::kRecovery) {
      revoke_if_reachable(a.primary, f);
      if (a.secondary == kInvalidInstance || secondary_failed) {
        // The secondary is gone too (Section 3.3): no replica can serve or
        // recover the fragment - discard it onto a fresh host.
        revoke_if_reachable(a.secondary, f);
        DiscardPrimaryLocked(f, /*reassign_new_host=*/true);
        if (a.primary != kInvalidInstance) impacted.push_back(a.primary);
      } else {
        // Transition (5): the primary failed again mid-recovery; fall back
        // to the secondary. The dirty list keeps accumulating where it is.
        a.mode = FragmentMode::kTransient;
        ++a.epoch;
        st.dirty_processed = false;
        impacted.push_back(a.secondary);
      }
    } else if (secondary_failed && a.mode == FragmentMode::kTransient) {
      // The dirty list is lost while the primary is still down: the primary
      // replica can no longer be recovered consistently. Discard it and move
      // the fragment to a fresh host (Sections 3.1, 3.3).
      revoke_if_reachable(a.secondary, f);
      DiscardPrimaryLocked(f, /*reassign_new_host=*/true);
      if (a.primary != kInvalidInstance) impacted.push_back(a.primary);
    } else if (secondary_failed && a.mode == FragmentMode::kRecovery) {
      // Section 3.3: clients terminate the working set transfer; recovery
      // workers delete remaining dirty keys from their fetched copies.
      revoke_if_reachable(a.secondary, f);
      a.secondary = kInvalidInstance;
      ++a.epoch;
      st.wst_terminated = true;
      if (a.primary != kInvalidInstance) impacted.push_back(a.primary);
      MaybeCompleteRecoveryLocked(f);
    }
  }
  PublishLocked(impacted);
}

void Coordinator::DiscardPrimaryLocked(FragmentId f, bool reassign_new_host) {
  auto& st = fragments_[f];
  auto& a = st.assignment;
  ++discarded_fragments_;
  ++a.epoch;
  // Bumping the fragment's config id to the latest invalidates every entry
  // the old primary holds for it, in O(1) (Section 3.2.4).
  a.config_id = next_config_id_ - 1;
  if (reassign_new_host) {
    const InstanceId host = NextAvailableLocked(a.primary);
    a.primary = host;  // may be kInvalidInstance if the cluster is drained
  }
  a.secondary = kInvalidInstance;
  a.mode = FragmentMode::kNormal;
  st.dirty_processed = false;
  st.wst_terminated = false;
}

void Coordinator::OnInstanceRecovered(InstanceId recovered) {
  std::lock_guard<std::mutex> lock(mu_);
  if (recovered >= instances_.size()) return;
  believed_up_[recovered] = true;
  const ConfigId new_id = next_config_id_++;
  const auto& policy = options_.policy;
  std::vector<InstanceId> impacted{recovered};

  for (FragmentId f = 0; f < static_cast<FragmentId>(fragments_.size());
       ++f) {
    auto& st = fragments_[f];
    auto& a = st.assignment;
    if (a.primary != recovered || a.mode != FragmentMode::kTransient) {
      continue;
    }

    if (!policy.consistent_recovery) {
      // Baselines skip recovery mode entirely. StaleCache restores the
      // pre-failure id (content served verbatim — stale reads possible);
      // VolatileCache content was wiped, so the id is bumped for hygiene.
      a.config_id = policy.persistent ? st.prefailure_config_id : new_id;
      a.secondary = kInvalidInstance;
      a.mode = FragmentMode::kNormal;
      ++a.epoch;
      continue;
    }

    // Transition (2) requires the fragment's dirty list to be intact in the
    // secondary (Section 3.2.1: replicas "that lack dirty lists must be
    // discarded").
    bool dirty_ok = false;
    if (a.secondary != kInvalidInstance &&
        InstanceAvailableLocked(a.secondary)) {
      auto payload = instances_[a.secondary]->Get(DirtyListKey(f));
      if (payload.ok() &&
          DirtyList::Parse(payload->data).has_value()) {
        dirty_ok = true;
      }
    }
    if (!dirty_ok) {
      DiscardPrimaryLocked(f, /*reassign_new_host=*/false);
      // The recovering instance still owns the fragment (Section 4: fragments
      // are assigned back), just with its content invalidated.
      continue;
    }

    a.mode = FragmentMode::kRecovery;
    a.config_id = st.prefailure_config_id;
    ++a.epoch;
    st.dirty_processed = false;
    st.wst_terminated = !policy.working_set_transfer;
    if (a.secondary != kInvalidInstance) impacted.push_back(a.secondary);
  }
  PublishLocked(impacted);
}

void Coordinator::RenewLeases() {
  std::lock_guard<std::mutex> lock(mu_);
  for (FragmentId f = 0; f < static_cast<FragmentId>(fragments_.size());
       ++f) {
    GrantLeasesLocked(f);
  }
}

void Coordinator::OnDirtyListProcessed(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fragment >= fragments_.size()) return;
  auto& st = fragments_[fragment];
  if (st.assignment.mode != FragmentMode::kRecovery) return;
  st.dirty_processed = true;
  MaybeCompleteRecoveryLocked(fragment);
}

void Coordinator::OnDirtyListUnavailable(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fragment >= fragments_.size()) return;
  auto& st = fragments_[fragment];
  auto& a = st.assignment;
  if (a.mode != FragmentMode::kRecovery) return;
  ++next_config_id_;
  const InstanceId old_secondary = a.secondary;
  DiscardPrimaryLocked(fragment, /*reassign_new_host=*/false);
  if (old_secondary != kInvalidInstance &&
      InstanceAvailableLocked(old_secondary)) {
    instances_[old_secondary]->RevokeLease(fragment, next_config_id_ - 1);
  }
  std::vector<InstanceId> impacted{a.primary};
  if (old_secondary != kInvalidInstance) impacted.push_back(old_secondary);
  PublishLocked(impacted);
}

void Coordinator::OnWorkingSetTransferTerminated(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fragment >= fragments_.size()) return;
  auto& st = fragments_[fragment];
  if (st.assignment.mode != FragmentMode::kRecovery) return;
  st.wst_terminated = true;
  MaybeCompleteRecoveryLocked(fragment);
}

void Coordinator::MaybeCompleteRecoveryLocked(FragmentId f) {
  auto& st = fragments_[f];
  auto& a = st.assignment;
  if (a.mode != FragmentMode::kRecovery) return;
  if (!st.dirty_processed) return;
  if (!st.wst_terminated && a.secondary != kInvalidInstance) return;
  // Transition (3): retire the secondary, back to normal. The (drained)
  // dirty list entry is deleted here — clients stop consulting it once they
  // observe the new configuration.
  const ConfigId new_id = next_config_id_++;
  const InstanceId old_secondary = a.secondary;
  if (old_secondary != kInvalidInstance &&
      InstanceAvailableLocked(old_secondary)) {
    (void)instances_[old_secondary]->Delete(DirtyListKey(f));
    instances_[old_secondary]->RevokeLease(f, new_id);
  }
  a.secondary = kInvalidInstance;
  a.mode = FragmentMode::kNormal;
  ++a.epoch;
  st.dirty_processed = false;
  st.wst_terminated = false;
  std::vector<InstanceId> impacted{a.primary};
  if (old_secondary != kInvalidInstance) impacted.push_back(old_secondary);
  PublishLocked(impacted);
}

bool Coordinator::EnforceDirtyListBudget(FragmentId fragment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.dirty_list_byte_budget == 0) return false;
  if (fragment >= fragments_.size()) return false;
  auto& st = fragments_[fragment];
  auto& a = st.assignment;
  if (a.mode != FragmentMode::kTransient) return false;
  if (a.secondary == kInvalidInstance ||
      !InstanceAvailableLocked(a.secondary)) {
    return false;
  }
  auto payload = instances_[a.secondary]->Get(DirtyListKey(fragment));
  if (payload.ok() &&
      payload->data.size() <= options_.dirty_list_byte_budget) {
    return false;
  }
  // Over budget (or already evicted): maintaining dirtiness costs more than
  // the primary's content is worth — discard it (transition (4)) and promote
  // the secondary to primary in normal mode.
  ++next_config_id_;
  const InstanceId secondary = a.secondary;
  ++discarded_fragments_;
  a.config_id = next_config_id_ - 1;
  a.primary = secondary;
  a.secondary = kInvalidInstance;
  a.mode = FragmentMode::kNormal;
  ++a.epoch;
  st.dirty_processed = false;
  st.wst_terminated = false;
  (void)instances_[secondary]->Delete(DirtyListKey(fragment));
  PublishLocked({secondary});
  return true;
}

FragmentMode Coordinator::ModeOf(FragmentId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fragments_.at(fragment).assignment.mode;
}

std::vector<FragmentId> Coordinator::FragmentsInMode(FragmentMode mode) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FragmentId> out;
  for (FragmentId f = 0; f < fragments_.size(); ++f) {
    if (fragments_[f].assignment.mode == mode) out.push_back(f);
  }
  return out;
}

std::vector<FragmentId> Coordinator::FragmentsWithPrimary(
    InstanceId instance) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FragmentId> out;
  for (FragmentId f = 0; f < fragments_.size(); ++f) {
    if (fragments_[f].assignment.primary == instance) out.push_back(f);
  }
  return out;
}

CoordinatorState Coordinator::ExportState() const {
  std::lock_guard<std::mutex> lock(mu_);
  CoordinatorState out;
  out.next_config_id = next_config_id_;
  out.fragments.reserve(fragments_.size());
  for (const auto& st : fragments_) {
    out.fragments.push_back({st.assignment, st.prefailure_config_id,
                             st.secondary_created_id, st.dirty_processed,
                             st.wst_terminated});
  }
  out.believed_up = believed_up_;
  out.round_robin_cursor = round_robin_cursor_;
  out.discarded_fragments = discarded_fragments_;
  out.master_epoch = master_epoch_;
  return out;
}

void Coordinator::ImportState(const CoordinatorState& state) {
  std::lock_guard<std::mutex> lock(mu_);
  master_epoch_ = state.master_epoch;
  next_config_id_ = state.next_config_id;
  if (state.master_epoch >= 2) {
    // A promoted shadow may hold a replica that is strictly older than what
    // the dead master last published (it was killed mid-replication). Fence
    // by epoch: ids minted under epoch E start above (E << 32), so they
    // exceed every id of every earlier epoch and clients — which only adopt
    // configurations forward by id — can never regress onto the stale
    // master's output. (Assumes < 2^32 publishes per epoch; each publish is
    // a failure/recovery edge, so that bound is beyond generous.)
    const ConfigId floor = (state.master_epoch << 32) + 1;
    if (next_config_id_ < floor) next_config_id_ = floor;
  }
  fragments_.clear();
  fragments_.reserve(state.fragments.size());
  for (const auto& fe : state.fragments) {
    FragmentState st;
    st.assignment = fe.assignment;
    st.prefailure_config_id = fe.prefailure_config_id;
    st.secondary_created_id = fe.secondary_created_id;
    st.dirty_processed = fe.dirty_processed;
    st.wst_terminated = fe.wst_terminated;
    fragments_.push_back(std::move(st));
  }
  believed_up_ = state.believed_up;
  round_robin_cursor_ = state.round_robin_cursor;
  discarded_fragments_ = state.discarded_fragments;
  // Re-publish so instances re-acquire fragment leases from the new master
  // and clients observe a consistent configuration.
  PublishLocked({});
}

bool Coordinator::DirtyProcessed(FragmentId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fragment >= fragments_.size()) return false;
  return fragments_[fragment].dirty_processed;
}

uint64_t Coordinator::discarded_fragment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_fragments_;
}

uint64_t Coordinator::master_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return master_epoch_;
}

}  // namespace gemini
