// CoordinatorGroup: master + shadow coordinators (Section 2.1).
//
// The paper's design places one master coordinator and one or more shadows
// behind ZooKeeper; when the master fails, a shadow is promoted "similarly
// to RAMCloud". The paper's own prototype omitted this; we implement the
// in-process equivalent here. (The *multi-process* equivalent — shadow
// geminicoordd processes fed CoordinatorState over kCoordShadowSync, with
// rank-based election, epoch fencing, and client endpoint failover — is
// CoordinatorReplica in src/cluster; this class stays the single-process
// form used by simulations and unit tests, where "failure" is an explicit
// FailMaster() call rather than a missed master beat.)
//
//  - every mutating call on the master is followed by synchronous state
//    replication to all shadows (the ZooKeeper write);
//  - FailMaster() kills the master; while no master is up, client-facing
//    calls return nullptr/no-op, which the client library already treats as
//    "read through the data store, suspend writes";
//  - PromoteShadow() installs the replicated state into a standby
//    Coordinator, which re-publishes the configuration and re-grants
//    fragment leases so instances accept the new master.
//
// The group exposes the full Coordinator API (clients and recovery workers
// take a CoordinatorService*; the failure-detector path takes the group
// directly), so a deployment is one `CoordinatorGroup` instead of one
// `Coordinator`.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "src/coordinator/coordinator.h"

namespace gemini {

class CoordinatorGroup : public CoordinatorService {
 public:
  CoordinatorGroup(const Clock* clock, std::vector<CacheInstance*> instances,
                   size_t num_fragments, size_t num_shadows,
                   Coordinator::Options options = {});

  // ---- CoordinatorService (client/worker-facing, master-routed) -------------

  [[nodiscard]] ConfigurationPtr GetConfiguration() const override;
  [[nodiscard]] ConfigId latest_id() const override;
  void OnDirtyListProcessed(FragmentId fragment) override;
  void OnWorkingSetTransferTerminated(FragmentId fragment) override;
  void OnDirtyListUnavailable(FragmentId fragment) override;
  [[nodiscard]] bool DirtyProcessed(FragmentId fragment) const override;

  // ---- Failure-detector-facing ----------------------------------------------

  void OnInstanceFailed(InstanceId failed);
  void OnInstancesFailed(const std::vector<InstanceId>& failed);
  void OnInstanceRecovered(InstanceId recovered);

  /// Periodic lease renewal; a no-op while no master is up, so fragment
  /// leases lapse and instances stop serving (fail-safe).
  void RenewLeases();

  // ---- Introspection (master-routed; safe defaults while down) --------------

  [[nodiscard]] FragmentMode ModeOf(FragmentId fragment) const;
  [[nodiscard]] std::vector<FragmentId> FragmentsWithPrimary(
      InstanceId instance) const;
  [[nodiscard]] std::vector<FragmentId> FragmentsInMode(
      FragmentMode mode) const;
  [[nodiscard]] uint64_t discarded_fragment_count() const;

  // ---- Group management -------------------------------------------------------

  /// Kills the current master. Until a shadow is promoted, the group is
  /// unavailable (GetConfiguration returns nullptr).
  void FailMaster();

  /// Promotes a shadow using the replicated state; no-op if a master is up
  /// or no shadow remains. Returns true if a promotion happened. Unlike the
  /// networked CoordinatorReplica, no master-epoch bump is needed here:
  /// replication is synchronous under the group lock, so a promoted shadow
  /// can never hold stale state and the dead master is a freed object, not
  /// a process that might still be publishing.
  bool PromoteShadow();

  [[nodiscard]] bool master_available() const;
  [[nodiscard]] size_t shadows_remaining() const;
  /// Direct access for tests / the failure injector (null while down).
  Coordinator* master();

 private:
  // Replicates the master's state to every shadow (requires mu_).
  void ReplicateLocked();

  const Clock* clock_;
  std::vector<CacheInstance*> instances_;
  Coordinator::Options options_;

  mutable std::mutex mu_;
  std::unique_ptr<Coordinator> master_;
  /// Replicated state per standby slot; a promotion consumes one slot.
  std::vector<CoordinatorState> shadows_;
};

}  // namespace gemini
