// Recovery policy: which system of the paper's evaluation a cluster runs.
//
// The evaluation compares Gemini's four variants (Figure 5) against two
// baselines (Section 5):
//
//   VolatileCache — discard the content of an instance after recovery
//                   (a volatile cache: the lower bound on recovery speed).
//   StaleCache    — reuse the content verbatim, without recovering the state
//                   of entries written during the failure (fast but serves
//                   stale reads — Figure 1).
//   Gemini-I      — consistent recovery; dirty keys invalidated.
//   Gemini-O      — consistent recovery; dirty keys overwritten with the
//                   latest value from the secondary replica.
//   Gemini-I+W / Gemini-O+W — the same plus working set transfer.
//
// All six are expressed as flag combinations consumed by the coordinator
// (dirty-list maintenance, recovery handling), the client (working set
// transfer), and the recovery workers (invalidate vs overwrite).
#pragma once

#include <string>

namespace gemini {

struct RecoveryPolicy {
  /// Cache media survive a power failure. When false, content is wiped on
  /// recovery (VolatileCache).
  bool persistent = true;
  /// Maintain per-fragment dirty lists in secondary replicas during failure.
  bool maintain_dirty_lists = true;
  /// Run the Gemini recovery protocol (recovery mode, dirty-key processing).
  /// When false with persistent=true, recovered content is served verbatim
  /// (StaleCache).
  bool consistent_recovery = true;
  /// Recovery workers overwrite dirty keys from the secondary (Gemini-O)
  /// instead of invalidating them (Gemini-I).
  bool overwrite_dirty = true;
  /// Transfer the working set from the secondary to the recovering primary.
  bool working_set_transfer = true;

  static RecoveryPolicy VolatileCache() {
    return {/*persistent=*/false, /*maintain_dirty_lists=*/false,
            /*consistent_recovery=*/false, /*overwrite_dirty=*/false,
            /*working_set_transfer=*/false};
  }
  static RecoveryPolicy StaleCache() {
    return {/*persistent=*/true, /*maintain_dirty_lists=*/false,
            /*consistent_recovery=*/false, /*overwrite_dirty=*/false,
            /*working_set_transfer=*/false};
  }
  static RecoveryPolicy GeminiI() {
    return {true, true, true, /*overwrite_dirty=*/false,
            /*working_set_transfer=*/false};
  }
  static RecoveryPolicy GeminiO() {
    return {true, true, true, /*overwrite_dirty=*/true,
            /*working_set_transfer=*/false};
  }
  static RecoveryPolicy GeminiIW() {
    return {true, true, true, /*overwrite_dirty=*/false,
            /*working_set_transfer=*/true};
  }
  static RecoveryPolicy GeminiOW() {
    return {true, true, true, /*overwrite_dirty=*/true,
            /*working_set_transfer=*/true};
  }

  [[nodiscard]] std::string Name() const {
    if (!persistent) return "VolatileCache";
    if (!consistent_recovery) return "StaleCache";
    std::string name = overwrite_dirty ? "Gemini-O" : "Gemini-I";
    if (working_set_transfer) name += "+W";
    return name;
  }
};

}  // namespace gemini
