// HeartbeatMonitor: clock-driven failure detection for the networked
// control plane.
//
// Each registered instance is expected to beat every `interval`; an
// instance whose last beat is older than `interval * miss_threshold` is
// declared failed. Detection is *edge-triggered*: Tick() reports each
// failed/recovered transition exactly once, so the caller (CoordinatorControl)
// can forward them 1:1 to Coordinator::OnInstancesFailed /
// OnInstanceRecovered without deduplication.
//
// The monitor is a pure state machine under the Clock abstraction — no
// threads, no sockets — so the missed-beat arithmetic is testable to the
// microsecond with a VirtualClock (tests/coordinator_heartbeat_test.cc).
// CoordinatorControl owns the ticker thread and the wire plumbing.
//
// Thread-compatible, not thread-safe: the owner serializes calls (the
// control plane funnels beats and ticks through one mutex anyway).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/clock.h"
#include "src/common/types.h"

namespace gemini {

class HeartbeatMonitor {
 public:
  struct Options {
    /// Expected beat period. geminid sends at this rate; the monitor only
    /// uses it to derive the failure deadline.
    Duration interval = Millis(100);
    /// Consecutive missed beats before an instance is declared failed.
    size_t miss_threshold = 3;
    /// Grace granted to instances seeded via ExpectRegistration (coordinator
    /// restart): how long they have to re-register before being failed.
    /// 0 means `interval * miss_threshold`.
    Duration restart_grace = 0;
  };

  /// Edge-triggered transitions observed by a Tick().
  struct Transitions {
    std::vector<InstanceId> failed;
    std::vector<InstanceId> recovered;
  };

  HeartbeatMonitor(const Clock* clock, size_t num_instances, Options options);

  /// An instance registered (initial attach or re-register after a restart).
  /// Counts as a beat. Returns true when this registration is a recovery
  /// edge — the instance was previously declared failed (or was never seen).
  /// The edge is also queued and reported by the next Tick() in
  /// `Transitions::recovered`, so the control plane can run the (expensive)
  /// recovery cycle on its ticker thread instead of the server's event loop.
  bool Register(InstanceId id);

  /// A heartbeat arrived for `id`. Beats from instances the monitor
  /// considers failed do NOT revive them: the instance must re-register
  /// (its process may have restarted and lost its leases; registration is
  /// the explicit "I am whole again" signal).
  void OnHeartbeat(InstanceId id);

  /// Seeds expectation for an instance believed up by imported coordinator
  /// state: it is treated as alive with `restart_grace` to re-register
  /// before the monitor fails it. Prevents a restarted coordinator from
  /// spuriously failing a healthy cluster (tested under a fake clock).
  void ExpectRegistration(InstanceId id);

  /// Advances detection to `now`; returns transitions that happened since
  /// the previous Tick, each reported exactly once.
  Transitions Tick(Timestamp now);

  /// True once the instance has registered and is not currently failed.
  [[nodiscard]] bool alive(InstanceId id) const;

  [[nodiscard]] Duration failure_deadline() const {
    return options_.interval * static_cast<Duration>(options_.miss_threshold);
  }

 private:
  enum class State {
    kUnseen,    // never registered; not monitored, not failed
    kAlive,     // beating
    kExpected,  // imported as up; grace period to re-register
    kFailed,    // declared failed; waiting for re-registration
  };
  struct Entry {
    State state = State::kUnseen;
    Timestamp last_beat = 0;
    Timestamp deadline = 0;  // for kExpected: when grace expires
  };

  const Clock* clock_;
  Options options_;
  std::vector<Entry> entries_;
  /// Recovery edges from Register() awaiting the next Tick().
  std::vector<InstanceId> pending_recovered_;
};

}  // namespace gemini
