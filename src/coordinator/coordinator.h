// Coordinator: grants fragment leases, maintains the configuration, and
// drives the fragment lifecycle of Figure 4 (Sections 2.1, 3).
//
// The coordinator owns the authoritative fragment table. On every instance
// failure or recovery it computes a new configuration, increments the
// configuration id, re-grants fragment leases to the serving replicas,
// notifies impacted instances of the new id, and inserts the serialized
// configuration as a cache entry into those instances (Section 2.1).
//
// Lifecycle transitions implemented here (circled numbers from Figure 4):
//   (1) primary unavailable: normal -> transient; assign a secondary on an
//       available instance (round-robin, Section 5.4.3) and initialize its
//       marker-bearing dirty list.
//   (2) primary available again: transient -> recovery, IF the dirty list is
//       intact in the secondary; the fragment's config id is restored to its
//       pre-failure value so still-valid primary entries are served
//       immediately.
//   (3) dirty list drained (and working set transfer finished, when enabled):
//       recovery -> normal; the secondary replica is retired.
//   (4) dirty list lost (secondary failed or evicted the list) or dirty-list
//       overhead over budget: the primary replica is discarded by bumping the
//       fragment's config id to the latest id — an O(1) mass-invalidation of
//       every entry the fragment held (Section 3.2.4, Example 3.1).
//   (5) primary fails again before recovery completes: recovery -> transient.
//
// The paper's prototype backs the coordinator with one master and shadow
// coordinators via ZooKeeper. This class is a single master; replication is
// layered on top of it: CoordinatorGroup replicates CoordinatorState to
// in-process shadows, and CoordinatorReplica (src/cluster) replicates it to
// shadow geminicoordd processes over the wire with rank-based election and
// epoch fencing (docs/PROTOCOL.md §12.7). Both promote a shadow by calling
// ImportState on a fresh Coordinator.
//
// Thread-safe.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/coordinator/configuration.h"
#include "src/coordinator/coordinator_service.h"
#include "src/coordinator/instance_endpoint.h"
#include "src/coordinator/policy.h"

namespace gemini {

/// Replicable coordinator state: everything a promoted shadow needs to
/// continue exactly where the failed master stopped (the in-process
/// equivalent of the paper's ZooKeeper-backed shadow coordinators).
struct CoordinatorState {
  struct FragmentEntry {
    FragmentAssignment assignment;
    ConfigId prefailure_config_id = 0;
    ConfigId secondary_created_id = 0;
    bool dirty_processed = false;
    bool wst_terminated = false;
  };
  ConfigId next_config_id = 1;
  std::vector<FragmentEntry> fragments;
  std::vector<bool> believed_up;
  size_t round_robin_cursor = 0;
  uint64_t discarded_fragments = 0;
  /// Mastership generation. 0/1 = the first master; each promotion adopts
  /// the state with a strictly larger epoch. For epoch >= 2, ImportState
  /// floors next_config_id at (master_epoch << 32) + 1 so configuration ids
  /// minted by the new master always exceed every id a stale ex-master
  /// could have published — clients adopt configurations only forward by
  /// id, which fences the ex-master's output (docs/PROTOCOL.md §12.7).
  uint64_t master_epoch = 0;
};

class Coordinator : public CoordinatorService {
 public:
  struct Options {
    RecoveryPolicy policy = RecoveryPolicy::GeminiOW();
    /// Fragment leases are long-lived (seconds to minutes, Section 2.3);
    /// the coordinator re-grants them on every publish.
    Duration fragment_lease_lifetime = Seconds(3600);
    /// Discard a primary replica when its dirty list grows beyond this many
    /// bytes (Figure 4, transition (4): "the overhead of maintaining dirty
    /// cache entries outweighs its benefit"). 0 disables the budget.
    uint64_t dirty_list_byte_budget = 0;
  };

  /// `instances` is the cluster; fragment i starts on instance i % M. This
  /// in-process form wraps each CacheInstance in a LocalInstanceEndpoint —
  /// the historical behavior, unchanged.
  Coordinator(const Clock* clock, std::vector<CacheInstance*> instances,
              size_t num_fragments)
      : Coordinator(clock, std::move(instances), num_fragments, Options()) {}
  Coordinator(const Clock* clock, std::vector<CacheInstance*> instances,
              size_t num_fragments, Options options);

  /// Endpoint form: the cluster as InstanceEndpoints (in-process, remote
  /// over TCP, or a mix). InstanceId i is endpoints[i]; endpoints must
  /// outlive the coordinator.
  Coordinator(const Clock* clock, std::vector<InstanceEndpoint*> endpoints,
              size_t num_fragments, Options options);

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Installs a hook invoked after every publish with the fresh
  /// configuration — how a networked control plane pushes config advances
  /// to connected clients. Called with the coordinator's lock held: the
  /// hook must be cheap and must never call back into this coordinator.
  /// Set before the coordinator starts taking events.
  void SetConfigListener(std::function<void(const ConfigurationPtr&)> listener);

  // ---- Client-facing ---------------------------------------------------------

  /// Latest published configuration (immutable snapshot).
  [[nodiscard]] ConfigurationPtr GetConfiguration() const override;
  [[nodiscard]] ConfigId latest_id() const override;

  // ---- Failure / recovery events (from the failure detector) ---------------

  /// The instance has been detected as failed; reassign its fragments.
  void OnInstanceFailed(InstanceId failed);

  /// Batched failure handling: all instances in `failed` are removed from
  /// the configuration in one transition (the paper's evaluation fails 20
  /// of 100 instances simultaneously). Guarantees no secondary replica is
  /// placed on a simultaneously failing instance.
  void OnInstancesFailed(const std::vector<InstanceId>& failed);

  /// The instance is reachable again. The caller must have restored the
  /// instance process first (RecoverPersistent / RecoverVolatile per policy).
  void OnInstanceRecovered(InstanceId recovered);

  /// Re-grants every serving replica's fragment lease for another
  /// `fragment_lease_lifetime` (Section 2.1: instances "must renew" their
  /// leases to keep processing requests; the coordinator drives the
  /// renewal). While the coordinator is down, leases lapse and instances
  /// stop serving — the fail-safe that keeps a partitioned cluster
  /// consistent.
  void RenewLeases();

  // ---- Recovery progress notifications --------------------------------------

  /// A recovery worker finished draining the fragment's dirty list
  /// (Algorithm 3); may complete recovery (transition (3)).
  void OnDirtyListProcessed(FragmentId fragment) override;

  /// Working set transfer for the fragment hit a termination condition
  /// (Section 3.2.2); may complete recovery (transition (3)).
  void OnWorkingSetTransferTerminated(FragmentId fragment) override;

  /// A client or recovery worker found the fragment's dirty list missing or
  /// partial (evicted) while the fragment was in recovery mode. The primary
  /// can no longer be recovered consistently: discard it (transition (4)).
  void OnDirtyListUnavailable(FragmentId fragment) override;

  /// Checks the fragment's dirty-list size against the byte budget and
  /// discards the primary replica if it is over (transition (4)). Returns
  /// true if a discard happened.
  bool EnforceDirtyListBudget(FragmentId fragment);

  // ---- Introspection ---------------------------------------------------------

  [[nodiscard]] FragmentMode ModeOf(FragmentId fragment) const;
  [[nodiscard]] std::vector<FragmentId> FragmentsInMode(
      FragmentMode mode) const;
  [[nodiscard]] std::vector<FragmentId> FragmentsWithPrimary(
      InstanceId instance) const;
  [[nodiscard]] const RecoveryPolicy& policy() const {
    return options_.policy;
  }
  /// Number of fragment discards performed via transition (4) plus
  /// unrecoverable-at-recovery discards (Table 3 accounting).
  [[nodiscard]] uint64_t discarded_fragment_count() const;

  /// True iff the fragment's dirty list has already been drained this
  /// recovery episode (the fragment may still be in recovery mode waiting
  /// for the working set transfer). Recovery workers skip such fragments.
  [[nodiscard]] bool DirtyProcessed(FragmentId fragment) const override;

  /// Snapshot of the replicable state (master -> shadow replication).
  [[nodiscard]] CoordinatorState ExportState() const;

  /// Adopts `state` wholesale and re-publishes: a promoted shadow calls
  /// this to take over, re-granting fragment leases so instances accept it.
  /// When state.master_epoch >= 2 the configuration-id floor documented on
  /// CoordinatorState::master_epoch is applied, fencing any ids a stale
  /// ex-master might still publish.
  void ImportState(const CoordinatorState& state);

  /// Mastership generation this coordinator publishes under (imported with
  /// its state; 0 until a replicated deployment sets one).
  [[nodiscard]] uint64_t master_epoch() const;

 private:
  struct FragmentState {
    FragmentAssignment assignment;
    /// The fragment's config id at the moment its primary failed; restored on
    /// transition (2) so still-valid primary entries become servable.
    ConfigId prefailure_config_id = 0;
    /// The config id under which the current secondary replica was created
    /// (transition (1)). The secondary's fragment lease uses this as its
    /// minimum-valid id: restoring the fragment's id to the pre-failure
    /// value for the primary must not re-validate leftovers a re-used
    /// secondary instance kept from an older episode.
    ConfigId secondary_created_id = 0;
    bool dirty_processed = false;
    bool wst_terminated = false;
  };

  // All Locked methods require mu_. `impacted` limits which instances receive
  // the serialized configuration entry (Section 2.1 notifies impacted
  // instances only); empty means every reachable instance (initial publish).
  void PublishLocked(const std::vector<InstanceId>& impacted);
  void GrantLeasesLocked(FragmentId f);
  // Picks the next available instance != exclude, round-robin.
  InstanceId NextAvailableLocked(InstanceId exclude);
  void DiscardPrimaryLocked(FragmentId f, bool reassign_new_host);
  void MaybeCompleteRecoveryLocked(FragmentId f);
  bool InstanceAvailableLocked(InstanceId id) const;

  /// Shared ctor tail: seeds the fragment table and publishes config 1.
  void Init(size_t num_fragments);

  const Clock* clock_;
  /// Endpoints owned by the CacheInstance* ctor (LocalInstanceEndpoints);
  /// empty when the caller supplied its own endpoints.
  std::vector<std::unique_ptr<InstanceEndpoint>> owned_endpoints_;
  /// The cluster, indexed by InstanceId.
  std::vector<InstanceEndpoint*> instances_;
  Options options_;

  mutable std::mutex mu_;
  std::function<void(const ConfigurationPtr&)> config_listener_;
  ConfigId next_config_id_ = 1;
  std::vector<FragmentState> fragments_;
  ConfigurationPtr published_;
  size_t round_robin_cursor_ = 0;
  uint64_t discarded_fragments_ = 0;
  uint64_t master_epoch_ = 0;
  /// Instances the coordinator currently believes are up.
  std::vector<bool> believed_up_;
};

}  // namespace gemini
