// InstanceEndpoint: how the Coordinator talks to a cache instance.
//
// The coordinator's protocol needs five things from an instance: liveness
// (available), fragment-lease grant/revoke, and internal-context
// Get/Set/Delete (configuration entries and dirty lists are ordinary cache
// entries at well-known keys, Section 2.1/3.1). Abstracting those behind an
// interface lets the same Coordinator drive in-process CacheInstances (the
// simulator, unit tests) and remote geminids over TCP (src/cluster) without
// knowing which it has.
//
// Lease lifetimes are durations (TTLs), not absolute expiries: processes do
// not share a clock, so the endpoint converts the TTL into an expiry in the
// *instance's* clock domain — locally via CacheInstance::clock(), remotely
// by shipping the TTL across the wire (kLeaseGrant, docs/PROTOCOL.md §12.3).
#pragma once

#include <string_view>

#include "src/cache/cache_backend.h"
#include "src/cache/cache_instance.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace gemini {

class InstanceEndpoint {
 public:
  virtual ~InstanceEndpoint() = default;

  /// Whether the instance can currently serve coordinator traffic. The
  /// coordinator skips unavailable endpoints when placing replicas,
  /// granting leases, and inserting config entries.
  [[nodiscard]] virtual bool available() const = 0;

  /// Grants/renews the instance's lease on `fragment` for `ttl` from now
  /// (the instance's now), with the given minimum-valid configuration id;
  /// also advances the instance's memoized latest configuration id.
  virtual void GrantLease(FragmentId fragment, ConfigId min_valid_config,
                          Duration ttl, ConfigId latest_config) = 0;

  /// Revokes the lease (fragment reassigned elsewhere).
  virtual void RevokeLease(FragmentId fragment, ConfigId latest_config) = 0;

  // Internal-context data ops (kInternalConfigId bypasses staleness checks;
  // the coordinator reads/writes config entries and dirty lists with them).
  virtual Result<CacheValue> Get(std::string_view key) = 0;
  virtual Status Set(std::string_view key, CacheValue value) = 0;
  virtual Status Delete(std::string_view key) = 0;
};

/// In-process endpoint over a CacheInstance — the historical coordinator
/// behavior, byte-identical: lease expiries land on the instance's own
/// clock, data ops run under kInternalConfigId.
class LocalInstanceEndpoint final : public InstanceEndpoint {
 public:
  explicit LocalInstanceEndpoint(CacheInstance* instance)
      : instance_(instance) {}

  [[nodiscard]] bool available() const override {
    return instance_->available();
  }

  void GrantLease(FragmentId fragment, ConfigId min_valid_config, Duration ttl,
                  ConfigId latest_config) override {
    instance_->GrantFragmentLease(fragment, min_valid_config,
                                  instance_->clock().Now() + ttl,
                                  latest_config);
  }

  void RevokeLease(FragmentId fragment, ConfigId latest_config) override {
    instance_->RevokeFragmentLease(fragment, latest_config);
  }

  Result<CacheValue> Get(std::string_view key) override {
    return instance_->Get(InternalContext(), key);
  }

  Status Set(std::string_view key, CacheValue value) override {
    return instance_->Set(InternalContext(), key, std::move(value));
  }

  Status Delete(std::string_view key) override {
    return instance_->Delete(InternalContext(), key);
  }

  [[nodiscard]] CacheInstance* instance() const { return instance_; }

 private:
  static OpContext InternalContext() {
    return OpContext{kInternalConfigId, kInvalidFragment};
  }

  CacheInstance* const instance_;
};

}  // namespace gemini
