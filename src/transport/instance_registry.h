// InstanceRegistry: the set of CacheInstances one geminid process hosts.
//
// The paper's deployment unit is a cluster of instances — a configuration
// assigns fragments to several of them — and a single server machine
// typically hosts more than one (the paper's "Instance-M:L" naming). The
// registry maps InstanceId → {instance, per-instance snapshot policy} so a
// single TransportServer event loop can route each connection to the
// instance its HELLO selected.
//
// The registry is assembled before TransportServer::Start() and is
// immutable afterwards: the event loop reads it without locking.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/status.h"

namespace gemini {

/// Per-instance transport policy (snapshot persistence, extra counters).
struct InstanceOptions {
  /// Target file of the wire kSnapshot op for this instance; empty rejects
  /// remote snapshot triggers.
  std::string snapshot_path;
  /// Extra (name, value) counters appended to this instance's kStats
  /// response — how geminid surfaces PersistentStore counters without the
  /// transport depending on src/persist. Called on an event-loop thread, so
  /// it must be cheap and thread-safe; null = no extra counters.
  std::function<std::vector<std::pair<std::string, uint64_t>>()> extra_stats;
};

class InstanceRegistry {
 public:
  InstanceRegistry() = default;

  /// Registers `instance` under its own id. The first registered instance
  /// becomes the default (what a v1 client, or a v2 HELLO carrying
  /// kAnyInstance, binds to). kInvalidArgument on nullptr, a reserved id,
  /// or a duplicate id.
  Status Add(CacheInstance* instance, InstanceOptions options = {});

  /// nullptr when `id` is not hosted here.
  [[nodiscard]] CacheInstance* Find(InstanceId id) const;
  [[nodiscard]] const InstanceOptions* FindOptions(InstanceId id) const;

  [[nodiscard]] InstanceId default_id() const { return default_id_; }
  [[nodiscard]] CacheInstance* default_instance() const {
    return Find(default_id_);
  }

  /// All hosted ids, ascending (the kInstanceList response order).
  [[nodiscard]] std::vector<InstanceId> ids() const;

  /// Dense slot index of `id` in ascending-id order, or npos when not
  /// hosted. Stable for the registry's lifetime (the registry is immutable
  /// after Start), so per-instance counters can live in flat atomic arrays
  /// indexed by slot instead of a locked map.
  static constexpr size_t npos = static_cast<size_t>(-1);
  [[nodiscard]] size_t IndexOf(InstanceId id) const;

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  struct Entry {
    CacheInstance* instance = nullptr;
    InstanceOptions options;
  };
  std::map<InstanceId, Entry> entries_;
  InstanceId default_id_ = kInvalidInstance;
};

}  // namespace gemini
