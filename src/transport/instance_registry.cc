#include "src/transport/instance_registry.h"

#include <iterator>

namespace gemini {

Status InstanceRegistry::Add(CacheInstance* instance,
                             InstanceOptions options) {
  if (instance == nullptr) {
    return Status(Code::kInvalidArgument, "null instance");
  }
  const InstanceId id = instance->id();
  if (id == kInvalidInstance) {
    return Status(Code::kInvalidArgument,
                  "instance id " + std::to_string(id) +
                      " is reserved by the wire protocol");
  }
  const auto [it, inserted] =
      entries_.emplace(id, Entry{instance, std::move(options)});
  (void)it;
  if (!inserted) {
    return Status(Code::kInvalidArgument,
                  "duplicate instance id " + std::to_string(id));
  }
  if (default_id_ == kInvalidInstance) default_id_ = id;
  return Status::Ok();
}

CacheInstance* InstanceRegistry::Find(InstanceId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.instance;
}

const InstanceOptions* InstanceRegistry::FindOptions(InstanceId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.options;
}

std::vector<InstanceId> InstanceRegistry::ids() const {
  std::vector<InstanceId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(id);
  return out;
}

size_t InstanceRegistry::IndexOf(InstanceId id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return npos;
  return static_cast<size_t>(std::distance(entries_.begin(), it));
}

}  // namespace gemini
