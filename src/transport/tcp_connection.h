// TcpConnection: one pipelined wire-protocol socket to a geminid, shareable
// between several TcpCacheBackends.
//
// A connection dials, runs the HELLO handshake (naming the target instance
// when the server hosts several), and then carries a *pipelined* request
// stream: callers enqueue (frame, completion) pairs into a bounded in-flight
// window, a writer thread coalesces everything pending into one send(2), and
// a reader thread drains responses, completing callers strictly in FIFO
// order. Response frames carry a status code, not a correlation id, so FIFO
// completion is the protocol's matching rule — sound because a geminid
// processes each connection's frames sequentially and replies in submission
// order (docs/PROTOCOL.md §10.6). Any number of backends — a GeminiClient's
// per-instance backend, a recovery worker's, a flusher's — multiplex one
// socket without waiting on each other's round trips.
//
// Sharing is per (host, port, instance): Acquire() hands out a
// process-wide shared connection for the triple, creating it lazily and
// dropping it when the last holder releases it. Connection loss fails every
// in-flight call with kUnavailable — the same code an in-process failed
// instance returns — and by default the connection redials transparently on
// the next call.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/transport/wire.h"

namespace gemini {

class TcpConnection {
 public:
  struct Options {
    Duration connect_timeout = Seconds(5);
    /// Per-call socket send/receive timeout (0 = OS default, i.e. block).
    Duration io_timeout = Seconds(30);
    /// Redial automatically on the first call after a connection drop.
    bool auto_reconnect = true;
    /// Upper bound on requests in flight (submitted, response pending) on
    /// this connection. Submitters past the bound block until a slot frees;
    /// 1 degenerates to the old strict request/response alternation.
    size_t max_inflight = 32;
  };

  /// Completion of one submitted request: the response status and, for kOk,
  /// the response body. Invoked exactly once, on the reader thread (or on
  /// the submitting thread when the request fails before being enqueued) —
  /// keep it cheap and never call back into this connection from inside.
  using Completion = std::function<void(Status, std::string)>;

  /// One request of a pipelined batch.
  struct BatchRequest {
    wire::Op op;
    std::string body;
  };
  /// Its response: `status` is kOk with `body` holding the payload, or the
  /// decoded error (connection loss = kUnavailable).
  struct BatchResponse {
    Status status = Status::Ok();
    std::string body;
  };

  /// `target_instance` selects the remote instance in the v2 HELLO;
  /// kAnyInstance binds the server's default instance.
  TcpConnection(std::string host, uint16_t port, InstanceId target_instance,
                Options options);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Returns the process-wide shared connection for (host, port,
  /// target_instance), creating it with `options` when no live holder
  /// exists (an already-live connection keeps its original options).
  static std::shared_ptr<TcpConnection> Acquire(const std::string& host,
                                                uint16_t port,
                                                InstanceId target_instance,
                                                const Options& options);

  /// Dials and runs the HELLO handshake. Idempotent; kUnavailable when the
  /// server cannot be reached, kWrongInstance when it does not host the
  /// target, kInternal on a protocol-version mismatch.
  Status Connect();
  /// Tears the connection down promptly: shuts the socket down out-of-band
  /// (interrupting reader/writer syscalls mid-flight) and fails every
  /// in-flight request with kUnavailable. Every sharer sees the drop; the
  /// next call redials (under auto_reconnect).
  void Disconnect();
  [[nodiscard]] bool connected() const;

  /// The bound remote instance's id, learned from HELLO (kInvalidInstance
  /// until the first successful Connect()).
  [[nodiscard]] InstanceId remote_id() const;

  /// Submits one request into the pipeline (connecting first if needed) and
  /// returns once it occupies a window slot; `done` fires when its response
  /// arrives, in FIFO order with every other submission. Blocks while the
  /// window is full. On connection loss `done` fires with kUnavailable.
  void SubmitAsync(wire::Op op, std::string_view body, Completion done);

  /// One request/response round trip (connecting first if needed).
  /// `resp_body` receives the response payload of a kOk reply; a non-ok
  /// reply becomes the returned Status (message from the body blob).
  /// Internally a SubmitAsync + wait, so concurrent callers pipeline
  /// instead of serializing.
  Status Transact(wire::Op op, std::string_view body,
                  std::string* resp_body);

  /// Submits every request back-to-back (one coalesced burst, up to the
  /// window) and waits for all responses. resp[i] corresponds to reqs[i].
  std::vector<BatchResponse> TransactBatch(
      const std::vector<BatchRequest>& reqs);

  /// The instance ids the remote server hosts (wire kInstanceList).
  Result<std::vector<InstanceId>> ListInstances();

 private:
  /// One connection epoch: the fd plus the receive buffer of its response
  /// stream. Epochs are immutable-identity objects handed to the reader and
  /// writer via shared_ptr, so a reconnect (new epoch) can never mix two
  /// sockets' bytes, and the fd is closed only when the last reference
  /// drops — after every thread has stopped issuing syscalls on it.
  struct Socket {
    explicit Socket(int fd_in) : fd(fd_in) {}
    ~Socket();
    /// Out-of-band interrupt: wakes any thread blocked in send/recv on this
    /// fd without racing fd reuse (close happens at destruction).
    void ShutdownBoth() const;

    const int fd;
    /// Bytes received but not yet decoded. Only the reader thread touches
    /// it while the epoch is current.
    std::string recv_buf;
  };

  Status ConnectLocked();
  Status EnsureConnectedLocked();
  /// Drops the current epoch and returns the completions (in-flight and
  /// queued-unsent) the caller must fail with `why` AFTER unlocking.
  std::deque<Completion> TearLocked();
  /// Fails `victims` with (kUnavailable, why); call without holding mu_.
  static void FailAll(std::deque<Completion>& victims, const std::string& why);

  void WriterLoop();
  void ReaderLoop();
  /// Decodes one kOk/error response body into the Status/payload pair the
  /// completion receives.
  static void CompleteFromFrame(const Completion& done, uint8_t tag,
                                std::string body);

  const std::string host_;
  const uint16_t port_;
  const InstanceId target_instance_;
  const Options options_;

  mutable std::mutex mu_;
  /// Current epoch; nullptr = disconnected.
  std::shared_ptr<Socket> sock_;
  InstanceId remote_id_ = kInvalidInstance;
  /// Encoded request frames accepted but not yet handed to send(2). The
  /// writer swaps the whole string out, so every frame pending at wakeup
  /// leaves in one syscall (write coalescing).
  std::string send_queue_;
  /// Completions of submitted requests, oldest first — the FIFO the reader
  /// matches response frames against.
  std::deque<Completion> inflight_;
  bool shutdown_ = false;
  bool threads_started_ = false;

  std::condition_variable writer_cv_;  // work for the writer / teardown
  std::condition_variable reader_cv_;  // work for the reader / teardown
  std::condition_variable window_cv_;  // a window slot freed / epoch died

  std::thread writer_;
  std::thread reader_;
};

}  // namespace gemini
