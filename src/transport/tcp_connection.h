// TcpConnection: one pipelined wire-protocol socket to a geminid, shareable
// between several TcpCacheBackends.
//
// A connection dials, runs the HELLO handshake (naming the target instance
// when the server hosts several), and then carries a *pipelined* request
// stream: callers enqueue (frame, completion) pairs into a bounded in-flight
// window, a writer thread coalesces everything pending into one send(2), and
// a reader thread drains responses, completing callers strictly in FIFO
// order. Response frames carry a status code, not a correlation id, so FIFO
// completion is the protocol's matching rule — sound because a geminid
// processes each connection's frames sequentially and replies in submission
// order (docs/PROTOCOL.md §10.6). Any number of backends — a GeminiClient's
// per-instance backend, a recovery worker's, a flusher's — multiplex one
// socket without waiting on each other's round trips.
//
// Sharing is per (host, port, instance): Acquire() hands out a
// process-wide shared connection for the triple, creating it lazily and
// dropping it when the last holder releases it. Connection loss fails every
// in-flight call with kUnavailable — the same code an in-process failed
// instance returns — and by default the connection redials transparently on
// the next call.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/transport/wire.h"

namespace gemini {

/// Client-side retry policy for *idempotent* wire ops (wire::IsIdempotentOp;
/// docs/PROTOCOL.md §11). A failed idempotent Transact() is redialed and
/// re-sent up to max_attempts times with exponential backoff and full
/// jitter; non-idempotent ops (anything touching leases, versions, or dirty
/// lists) always fail fast after one attempt, because a duplicated send
/// after an ambiguous connection drop could double-apply. Only kUnavailable
/// is retried — every other code is a definitive answer from the server.
struct RetryPolicy {
  /// Total attempts including the first; 1 (the default) disables retry, so
  /// existing callers see byte-identical behavior.
  int max_attempts = 1;
  /// Backoff cap before attempt 2; doubles per attempt up to max_backoff.
  /// The actual sleep is uniform in [0, cap] (full jitter).
  Duration initial_backoff = Millis(2);
  Duration max_backoff = Millis(100);
  /// Per-op wall-clock budget across all attempts and backoffs; once it is
  /// spent no new attempt starts (the op returns its last error). 0 = no
  /// budget (bounded by max_attempts alone).
  Duration deadline = 0;
  /// Seed for the jitter draw; 0 derives one from the endpoint so two
  /// clients hammering the same dead server do not sleep in lockstep.
  uint64_t jitter_seed = 0;
};

class TcpConnection {
 public:
  struct Options {
    Duration connect_timeout = Seconds(5);
    /// Per-call socket send/receive timeout (0 = OS default, i.e. block).
    /// Expiry mid-response is connection-fatal: the reader cannot tell a
    /// stalled peer from a dead one, and resuming a half-read stream later
    /// would desync the FIFO, so it fails the whole in-flight window with
    /// kUnavailable and forces a redial.
    Duration io_timeout = Seconds(30);
    /// Redial automatically on the first call after a connection drop.
    bool auto_reconnect = true;
    /// Upper bound on requests in flight (submitted, response pending) on
    /// this connection. Submitters past the bound block until a slot frees;
    /// 1 degenerates to the old strict request/response alternation.
    size_t max_inflight = 32;
    /// Retry policy for idempotent ops issued via Transact()/MultiGet
    /// (SubmitAsync stays single-shot: async callers own their retries).
    RetryPolicy retry;
    /// Circuit breaker: after this many *consecutive* failed dials (socket
    /// or handshake failure with kUnavailable) the endpoint is considered
    /// down and every call fails fast — no dial, no connect_timeout — until
    /// breaker_cooldown passes; then exactly one half-open probe dial runs,
    /// closing the breaker on success or re-opening it on failure. 0
    /// disables the breaker. Fast kUnavailable is what lets GeminiClient
    /// fall through to the data store instead of hammering a dead endpoint.
    int breaker_failure_threshold = 8;
    Duration breaker_cooldown = Millis(500);
  };

  /// Observable circuit-breaker state (for tests and introspection).
  enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

  /// Completion of one submitted request: the response status and, for kOk,
  /// the response body. Invoked exactly once, on the reader thread (or on
  /// the submitting thread when the request fails before being enqueued) —
  /// keep it cheap and never call back into this connection from inside.
  using Completion = std::function<void(Status, std::string)>;

  /// Handler for unsolicited server pushes (frames whose tag satisfies
  /// wire::IsPushTag — e.g. configuration pushes after a kCoordConfigWatch
  /// subscription). Runs on the reader thread; keep it cheap and never call
  /// back into this connection from inside. Push frames are not responses:
  /// they bypass the FIFO response matching entirely (§10.6 unaffected).
  using PushHandler = std::function<void(uint8_t tag, const std::string& body)>;

  /// Registers `handler` for every push frame this connection receives, for
  /// the connection's lifetime (there is no removal — holders of a shared
  /// connection each add their own handler and must outlive it, or capture
  /// weak state). Registering also switches the reader into push-interest
  /// mode: it keeps draining the socket even with no request in flight, so
  /// pushes arrive promptly on an otherwise idle connection.
  void AddPushHandler(PushHandler handler);

  /// One request of a pipelined batch.
  struct BatchRequest {
    wire::Op op;
    std::string body;
  };
  /// Its response: `status` is kOk with `body` holding the payload, or the
  /// decoded error (connection loss = kUnavailable).
  struct BatchResponse {
    Status status = Status::Ok();
    std::string body;
  };

  /// `target_instance` selects the remote instance in the v2 HELLO;
  /// kAnyInstance binds the server's default instance.
  TcpConnection(std::string host, uint16_t port, InstanceId target_instance,
                Options options);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Returns the process-wide shared connection for (host, port,
  /// target_instance), creating it with `options` when no live holder
  /// exists (an already-live connection keeps its original options).
  static std::shared_ptr<TcpConnection> Acquire(const std::string& host,
                                                uint16_t port,
                                                InstanceId target_instance,
                                                const Options& options);

  /// Dials and runs the HELLO handshake. Idempotent; kUnavailable when the
  /// server cannot be reached, kWrongInstance when it does not host the
  /// target, kInternal on a protocol-version mismatch.
  Status Connect();
  /// Tears the connection down promptly: shuts the socket down out-of-band
  /// (interrupting reader/writer syscalls mid-flight) and fails every
  /// in-flight request with kUnavailable. Every sharer sees the drop; the
  /// next call redials (under auto_reconnect).
  void Disconnect();
  [[nodiscard]] bool connected() const;

  /// The bound remote instance's id, learned from HELLO (kInvalidInstance
  /// until the first successful Connect()).
  [[nodiscard]] InstanceId remote_id() const;

  /// The options this connection was created with (shared holders all see
  /// the creator's options — see Acquire()).
  [[nodiscard]] const Options& options() const { return options_; }

  /// Current circuit-breaker state. kOpen = calls fail fast without
  /// dialing; kHalfOpen = the cooldown has passed and the next call is the
  /// probe.
  [[nodiscard]] BreakerState breaker_state() const;

  /// The full-jitter backoff to sleep before `attempt` (2-based: the sleep
  /// between attempt N-1 and N), or a negative Duration when `policy`'s
  /// deadline leaves no room for another attempt. `elapsed` is the time
  /// already spent on the op; `salt` decorrelates independent retry loops.
  /// Exposed so TcpCacheBackend::MultiGet can share the exact policy
  /// semantics.
  static Duration BackoffBeforeAttempt(const RetryPolicy& policy, int attempt,
                                       Duration elapsed, uint64_t salt);

  /// Submits one request into the pipeline (connecting first if needed) and
  /// returns once it occupies a window slot; `done` fires when its response
  /// arrives, in FIFO order with every other submission. Blocks while the
  /// window is full. On connection loss `done` fires with kUnavailable.
  void SubmitAsync(wire::Op op, std::string_view body, Completion done);

  /// One request/response round trip (connecting first if needed).
  /// `resp_body` receives the response payload of a kOk reply; a non-ok
  /// reply becomes the returned Status (message from the body blob).
  /// Internally a SubmitAsync + wait, so concurrent callers pipeline
  /// instead of serializing. When options().retry allows it and `op` is
  /// idempotent, a kUnavailable outcome is transparently retried (redial +
  /// re-send) within the policy's attempt and deadline budget.
  Status Transact(wire::Op op, std::string_view body,
                  std::string* resp_body);

  /// Submits every request back-to-back (one coalesced burst, up to the
  /// window) and waits for all responses. resp[i] corresponds to reqs[i].
  std::vector<BatchResponse> TransactBatch(
      const std::vector<BatchRequest>& reqs);

  /// The instance ids the remote server hosts (wire kInstanceList).
  Result<std::vector<InstanceId>> ListInstances();

 private:
  /// One connection epoch: the fd plus the receive buffer of its response
  /// stream. Epochs are immutable-identity objects handed to the reader and
  /// writer via shared_ptr, so a reconnect (new epoch) can never mix two
  /// sockets' bytes, and the fd is closed only when the last reference
  /// drops — after every thread has stopped issuing syscalls on it.
  struct Socket {
    explicit Socket(int fd_in) : fd(fd_in) {}
    ~Socket();
    /// Out-of-band interrupt: wakes any thread blocked in send/recv on this
    /// fd without racing fd reuse (close happens at destruction).
    void ShutdownBoth() const;

    const int fd;
    /// Bytes received but not yet decoded. Only the reader thread touches
    /// it while the epoch is current.
    std::string recv_buf;
  };

  Status ConnectLocked();
  /// The actual dial + HELLO, called by ConnectLocked once the breaker
  /// admits the attempt.
  Status DialLocked();
  Status EnsureConnectedLocked();
  /// One SubmitAsync + wait round trip (the pre-retry Transact()).
  Status TransactOnce(wire::Op op, std::string_view body,
                      std::string* resp_body);
  /// Drops the current epoch and returns the completions (in-flight and
  /// queued-unsent) the caller must fail with `why` AFTER unlocking.
  std::deque<Completion> TearLocked();
  /// Fails `victims` with (kUnavailable, why); call without holding mu_.
  static void FailAll(std::deque<Completion>& victims, const std::string& why);

  void WriterLoop();
  void ReaderLoop();
  /// Decodes one kOk/error response body into the Status/payload pair the
  /// completion receives.
  static void CompleteFromFrame(const Completion& done, uint8_t tag,
                                std::string body);

  const std::string host_;
  const uint16_t port_;
  const InstanceId target_instance_;
  const Options options_;

  mutable std::mutex mu_;
  /// Current epoch; nullptr = disconnected.
  std::shared_ptr<Socket> sock_;
  InstanceId remote_id_ = kInvalidInstance;
  /// Circuit breaker (guarded by mu_): consecutive kUnavailable dial
  /// failures and the wall-clock (SystemClock, monotonic us) the open state
  /// lasts until.
  int consecutive_dial_failures_ = 0;
  Timestamp breaker_open_until_ = 0;
  /// Encoded request frames accepted but not yet handed to the socket, one
  /// string per frame. The writer swaps the whole deque out and sends it as
  /// an iovec chain through one sendmsg(2), so every frame pending at wakeup
  /// leaves in one syscall (write coalescing) with no coalescing memcpy.
  std::deque<std::string> send_queue_;
  /// Completions of submitted requests, oldest first — the FIFO the reader
  /// matches response frames against.
  std::deque<Completion> inflight_;
  /// Copy-on-write push handler list (guarded by mu_; the reader snapshots
  /// it and dispatches with mu_ released).
  std::shared_ptr<const std::vector<PushHandler>> push_handlers_;
  /// True once any push handler exists: the reader then pumps the socket
  /// even when inflight_ is empty, and an idle recv timeout is benign
  /// instead of connection-fatal.
  bool push_interest_ = false;
  bool shutdown_ = false;
  bool threads_started_ = false;

  std::condition_variable writer_cv_;  // work for the writer / teardown
  std::condition_variable reader_cv_;  // work for the reader / teardown
  std::condition_variable window_cv_;  // a window slot freed / epoch died

  std::thread writer_;
  std::thread reader_;
};

}  // namespace gemini
