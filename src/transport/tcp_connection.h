// TcpConnection: one wire-protocol socket to a geminid, shareable between
// several TcpCacheBackends.
//
// A connection dials, runs the HELLO handshake (naming the target instance
// when the server hosts several), and then carries a strict
// request/response alternation; an internal mutex serializes callers, so
// any number of backends — a GeminiClient's per-instance backend, a
// recovery worker's, a flusher's — can multiplex one socket. This
// connection-sharing layer is the stepping stone to request pipelining:
// once responses are matched to requests instead of strictly alternating,
// the sharers stop waiting on each other.
//
// Sharing is per (host, port, instance): Acquire() hands out a
// process-wide shared connection for the triple, creating it lazily and
// dropping it when the last holder releases it. Connection loss maps to
// kUnavailable — the same code an in-process failed instance returns — and
// by default the connection redials transparently on the next call.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/transport/wire.h"

namespace gemini {

class TcpConnection {
 public:
  struct Options {
    Duration connect_timeout = Seconds(5);
    /// Per-call socket send/receive timeout (0 = OS default, i.e. block).
    Duration io_timeout = Seconds(30);
    /// Redial automatically on the first call after a connection drop.
    bool auto_reconnect = true;
  };

  /// `target_instance` selects the remote instance in the v2 HELLO;
  /// kAnyInstance binds the server's default instance.
  TcpConnection(std::string host, uint16_t port, InstanceId target_instance,
                Options options);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Returns the process-wide shared connection for (host, port,
  /// target_instance), creating it with `options` when no live holder
  /// exists (an already-live connection keeps its original options).
  static std::shared_ptr<TcpConnection> Acquire(const std::string& host,
                                                uint16_t port,
                                                InstanceId target_instance,
                                                const Options& options);

  /// Dials and runs the HELLO handshake. Idempotent; kUnavailable when the
  /// server cannot be reached, kWrongInstance when it does not host the
  /// target, kInternal on a protocol-version mismatch.
  Status Connect();
  /// Closes the socket. Every sharer sees the drop; the next call redials
  /// (under auto_reconnect).
  void Disconnect();
  [[nodiscard]] bool connected() const;

  /// The bound remote instance's id, learned from HELLO (kInvalidInstance
  /// until the first successful Connect()).
  [[nodiscard]] InstanceId remote_id() const;

  /// One request/response round trip (connecting first if needed).
  /// `resp_body` receives the response payload of a kOk reply; a non-ok
  /// reply becomes the returned Status (message from the body blob).
  Status Transact(wire::Op op, std::string_view body,
                  std::string* resp_body);

  /// The instance ids the remote server hosts (wire kInstanceList).
  Result<std::vector<InstanceId>> ListInstances();

 private:
  Status TransactLocked(wire::Op op, std::string_view body,
                        std::string* resp_body);
  Status ConnectLocked();
  Status EnsureConnectedLocked();
  void DisconnectLocked();
  Status SendAllLocked(std::string_view bytes);
  /// Reads until one full frame is buffered; outputs its tag and body.
  Status ReadFrameLocked(uint8_t* tag, std::string* body);

  const std::string host_;
  const uint16_t port_;
  const InstanceId target_instance_;
  const Options options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  InstanceId remote_id_ = kInvalidInstance;
  std::string recv_buf_;
};

}  // namespace gemini
