#include "src/transport/fault_proxy.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/transport/wire.h"

namespace gemini {

namespace {

/// Relay threads poll their source fd in short ticks so Stop() and a Sever()
/// from the opposite direction are noticed promptly.
constexpr int kRelayTickMs = 20;

void SleepFor(Duration d) {
  if (d > 0) std::this_thread::sleep_for(std::chrono::microseconds(d));
}

bool SendAllFd(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

/// One proxied connection: the client-side fd, the upstream fd, and the two
/// relay threads shoveling bytes between them. `severed` flips once either
/// direction decides (or discovers) the connection is dead; both relays exit
/// on their next tick.
struct FaultProxy::Link {
  Link(int client_fd_in, int server_fd_in, uint64_t conn_index_in)
      : client_fd(client_fd_in),
        server_fd(server_fd_in),
        conn_index(conn_index_in) {}

  const int client_fd;
  const int server_fd;
  const uint64_t conn_index;
  std::atomic<bool> severed{false};
  std::atomic<int> relays_done{0};
  std::thread forward_thread;   // client -> server
  std::thread backward_thread;  // server -> client

  [[nodiscard]] int src_fd(Direction d) const {
    return d == Direction::kClientToServer ? client_fd : server_fd;
  }
  [[nodiscard]] int dst_fd(Direction d) const {
    return d == Direction::kClientToServer ? server_fd : client_fd;
  }
};

FaultProxy::FaultProxy(std::string upstream_host, uint16_t upstream_port,
                       Options options)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port),
      options_(options) {}

FaultProxy::~FaultProxy() { Stop(); }

// ---- The schedule -----------------------------------------------------------

FaultProxy::PlannedFault FaultProxy::PlanFor(uint64_t conn_index,
                                             Direction direction,
                                             uint64_t frame_index) const {
  const DirectionProfile& p = direction == Direction::kClientToServer
                                  ? options_.client_to_server
                                  : options_.server_to_client;
  PlannedFault out;
  if (frame_index < p.skip_frames) return out;
  const uint64_t f = frame_index - p.skip_frames;

  // Hold groups are positional, not probabilistic: the last `hold_count`
  // frames of every `hold_every`-frame window are buffered and released as
  // one burst. Positional placement keeps holds from colliding with the
  // probabilistic faults below in a seed-dependent way.
  if (p.hold_every > 0 && p.hold_count > 0) {
    const uint32_t in_group =
        static_cast<uint32_t>(f % p.hold_every);
    const uint32_t first_held =
        p.hold_every - std::min(p.hold_count, p.hold_every);
    if (in_group >= first_held) {
      out.kind = FaultKind::kHold;
      return out;
    }
  }

  // One Rng per decision, keyed by every index that identifies it — the
  // schedule is a pure function of (seed, conn, direction, frame) and never
  // of arrival timing or thread interleaving.
  Rng rng(Mix64(options_.seed ^ Mix64(conn_index * 2 +
                                      static_cast<uint64_t>(direction)) ^
                Mix64(f + 0x517CC1B727220A95ULL)));
  double roll = rng.NextDouble();
  const double split = 0.15 + 0.7 * rng.NextDouble();
  if (roll < p.cut_prob) {
    out.kind = FaultKind::kCut;
    out.split = split;
    return out;
  }
  roll -= p.cut_prob;
  if (roll < p.truncate_prob) {
    out.kind = FaultKind::kTruncate;
    out.split = split;
    return out;
  }
  roll -= p.truncate_prob;
  if (roll < p.stall_prob) {
    out.kind = FaultKind::kStall;
    out.split = split;
    out.delay = p.stall;
    return out;
  }
  roll -= p.stall_prob;
  if (roll < p.delay_prob) {
    out.kind = FaultKind::kDelay;
    const Duration lo = std::min(p.delay_min, p.delay_max);
    const Duration hi = std::max(p.delay_min, p.delay_max);
    out.delay =
        lo + static_cast<Duration>(rng.NextBounded(
                 static_cast<uint64_t>(hi - lo) + 1));
    return out;
  }
  return out;
}

bool FaultProxy::ResetOnAccept(uint64_t conn_index) const {
  if (options_.reset_on_accept_prob <= 0.0) return false;
  Rng rng(Mix64(options_.seed ^ Mix64(conn_index + 0x2545F4914F6CDD1DULL)));
  return rng.NextDouble() < options_.reset_on_accept_prob;
}

// ---- Lifecycle --------------------------------------------------------------

Status FaultProxy::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(Code::kInvalidArgument, "proxy already running");
  }
  stop_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status(Code::kInternal, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal,
                  std::string("proxy bind/listen failed: ") +
                      std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&FaultProxy::AcceptLoop, this);
  return Status::Ok();
}

void FaultProxy::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Link>> links;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    links.swap(links_);
  }
  for (auto& link : links) Sever(*link);
  for (auto& link : links) {
    if (link->forward_thread.joinable()) link->forward_thread.join();
    if (link->backward_thread.joinable()) link->backward_thread.join();
    ::close(link->client_fd);
    ::close(link->server_fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

FaultProxy::Stats FaultProxy::stats() const {
  Stats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_reset_on_accept = connections_reset_.load();
  s.frames_forwarded = frames_forwarded_.load();
  s.bytes_forwarded = bytes_forwarded_.load();
  s.delays = delays_.load();
  s.stalls = stalls_.load();
  s.cuts = cuts_.load();
  s.truncations = truncations_.load();
  s.holds = holds_.load();
  return s;
}

void FaultProxy::ReapFinishedLinks() {
  std::lock_guard<std::mutex> lock(links_mu_);
  for (auto it = links_.begin(); it != links_.end();) {
    Link& link = **it;
    if (link.relays_done.load(std::memory_order_acquire) == 2) {
      if (link.forward_thread.joinable()) link.forward_thread.join();
      if (link.backward_thread.joinable()) link.backward_thread.join();
      ::close(link.client_fd);
      ::close(link.server_fd);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultProxy::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    struct pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 50);
    if (rc <= 0) {
      ReapFinishedLinks();
      continue;
    }
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    const uint64_t conn_index = next_conn_index_++;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    if (ResetOnAccept(conn_index)) {
      // SO_LINGER with zero timeout turns close() into an RST — the client
      // sees ECONNRESET on its next read/write, not a clean FIN.
      struct linger lg{1, 0};
      ::setsockopt(client_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      ::close(client_fd);
      connections_reset_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }

    // Dial the upstream leg (blocking with a poll()-bounded connect).
    int server_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    bool up = server_fd >= 0;
    if (up) {
      struct sockaddr_in addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sin_family = AF_INET;
      addr.sin_port = htons(upstream_port_);
      up = ::inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr) == 1;
      if (up) {
        const int flags = ::fcntl(server_fd, F_GETFL, 0);
        ::fcntl(server_fd, F_SETFL, flags | O_NONBLOCK);
        int rc2 = ::connect(server_fd,
                            reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof(addr));
        if (rc2 != 0 && errno == EINPROGRESS) {
          struct pollfd cpfd{server_fd, POLLOUT, 0};
          const int timeout_ms = static_cast<int>(
              options_.upstream_connect_timeout / kMillisecond);
          rc2 = ::poll(&cpfd, 1, timeout_ms > 0 ? timeout_ms : -1);
          int err = 0;
          socklen_t elen = sizeof(err);
          up = rc2 > 0 &&
               ::getsockopt(server_fd, SOL_SOCKET, SO_ERROR, &err, &elen) ==
                   0 &&
               err == 0;
        } else {
          up = rc2 == 0;
        }
        if (up) ::fcntl(server_fd, F_SETFL, flags);
      }
    }
    if (!up) {
      if (server_fd >= 0) ::close(server_fd);
      ::close(client_fd);
      continue;
    }
    int one = 1;
    ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::setsockopt(server_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto link = std::make_unique<Link>(client_fd, server_fd, conn_index);
    Link* raw = link.get();
    raw->forward_thread = std::thread(
        [this, raw] { Relay(*raw, Direction::kClientToServer); });
    raw->backward_thread = std::thread(
        [this, raw] { Relay(*raw, Direction::kServerToClient); });
    {
      std::lock_guard<std::mutex> lock(links_mu_);
      links_.push_back(std::move(link));
    }
    ReapFinishedLinks();
  }
}

void FaultProxy::Sever(Link& link) {
  if (link.severed.exchange(true, std::memory_order_acq_rel)) return;
  // Shutdown (not close) so the relay threads still own valid fds; close
  // happens once both threads are done (ReapFinishedLinks / Stop).
  ::shutdown(link.client_fd, SHUT_RDWR);
  ::shutdown(link.server_fd, SHUT_RDWR);
}

bool FaultProxy::Forward(Link& link, Direction direction,
                         std::string_view bytes) {
  const DirectionProfile& p = direction == Direction::kClientToServer
                                  ? options_.client_to_server
                                  : options_.server_to_client;
  const int fd = link.dst_fd(direction);
  if (p.throttle_bytes_per_sec == 0) {
    if (!SendAllFd(fd, bytes)) return false;
  } else {
    // Chunked pacing: send at most 5 ms worth of bytes, then sleep 5 ms.
    const size_t chunk = std::max<uint64_t>(
        1, p.throttle_bytes_per_sec / 200);
    size_t off = 0;
    while (off < bytes.size()) {
      if (stop_.load(std::memory_order_acquire) ||
          link.severed.load(std::memory_order_acquire)) {
        return false;
      }
      const size_t n = std::min(chunk, bytes.size() - off);
      if (!SendAllFd(fd, bytes.substr(off, n))) return false;
      off += n;
      if (off < bytes.size()) SleepFor(Millis(5));
    }
  }
  bytes_forwarded_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return true;
}

void FaultProxy::Relay(Link& link, Direction direction) {
  const int src = link.src_fd(direction);
  std::string in;        // received, not yet framed
  std::string held;      // complete frames buffered by kHold
  Timestamp held_since = 0;
  uint64_t frame_index = 0;
  const SystemClock& clock = SystemClock::Global();
  bool dead = false;

  const auto flush_held = [&]() -> bool {
    if (held.empty()) return true;
    const bool ok = Forward(link, direction, held);
    held.clear();
    return ok;
  };

  while (!dead && !stop_.load(std::memory_order_acquire) &&
         !link.severed.load(std::memory_order_acquire)) {
    // Frame extraction first: recv() appends, this loop drains.
    for (;;) {
      size_t consumed = 0;
      uint8_t tag = 0;
      std::string_view body;
      const wire::DecodeResult r =
          wire::DecodeFrame(in, &consumed, &tag, &body);
      if (r != wire::DecodeResult::kFrame) {
        // kNeedMore: wait for bytes. kMalformed: the peer is not speaking
        // the wire protocol — forward verbatim and stop framing this
        // direction (pass-through keeps the proxy usable under garbage).
        if (r == wire::DecodeResult::kMalformed && !in.empty()) {
          if (!flush_held() || !Forward(link, direction, in)) dead = true;
          in.clear();
        }
        break;
      }
      const std::string_view frame(in.data(), consumed);
      const PlannedFault plan = PlanFor(link.conn_index, direction,
                                        frame_index);
      ++frame_index;
      switch (plan.kind) {
        case FaultKind::kNone:
          if (!flush_held() || !Forward(link, direction, frame)) dead = true;
          break;
        case FaultKind::kDelay:
          delays_.fetch_add(1, std::memory_order_relaxed);
          SleepFor(plan.delay);
          if (!flush_held() || !Forward(link, direction, frame)) dead = true;
          break;
        case FaultKind::kStall: {
          stalls_.fetch_add(1, std::memory_order_relaxed);
          const size_t prefix = std::max<size_t>(
              1, static_cast<size_t>(plan.split *
                                     static_cast<double>(frame.size())));
          if (!flush_held() ||
              !Forward(link, direction, frame.substr(0, prefix))) {
            dead = true;
            break;
          }
          // Mid-frame pause, in severable ticks so Stop() stays prompt.
          Duration remaining = plan.delay;
          while (remaining > 0 && !stop_.load(std::memory_order_acquire) &&
                 !link.severed.load(std::memory_order_acquire)) {
            const Duration step = std::min<Duration>(remaining,
                                                     Millis(kRelayTickMs));
            SleepFor(step);
            remaining -= step;
          }
          if (!Forward(link, direction, frame.substr(prefix))) dead = true;
          break;
        }
        case FaultKind::kCut: {
          cuts_.fetch_add(1, std::memory_order_relaxed);
          const size_t prefix = std::max<size_t>(
              1, static_cast<size_t>(plan.split *
                                     static_cast<double>(frame.size())));
          (void)flush_held();
          (void)Forward(link, direction, frame.substr(0, prefix));
          Sever(link);
          dead = true;
          break;
        }
        case FaultKind::kTruncate: {
          truncations_.fetch_add(1, std::memory_order_relaxed);
          const size_t prefix = std::max<size_t>(
              1, static_cast<size_t>(plan.split *
                                     static_cast<double>(frame.size())));
          (void)flush_held();
          (void)Forward(link, direction, frame.substr(0, prefix));
          Sever(link);
          dead = true;
          break;
        }
        case FaultKind::kHold:
          holds_.fetch_add(1, std::memory_order_relaxed);
          if (held.empty()) held_since = clock.Now();
          held.append(frame);
          break;
      }
      if (!dead) {
        frames_forwarded_.fetch_add(1, std::memory_order_relaxed);
      }
      in.erase(0, consumed);
      if (dead) break;
    }
    if (dead) break;

    // Age out a hold whose group never completed (e.g. the client went
    // quiet waiting for a held response) — holds delay, never deadlock.
    if (!held.empty() &&
        clock.Now() - held_since >= options_.hold_flush) {
      if (!flush_held()) break;
    }

    struct pollfd pfd{src, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kRelayTickMs);
    if (rc <= 0) continue;
    char buf[64 * 1024];
    const ssize_t n = ::recv(src, buf, sizeof(buf), 0);
    if (n > 0) {
      in.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    // EOF or a hard error: flush anything buffered, then propagate the
    // close downstream so the receiver sees it too.
    (void)flush_held();
    break;
  }
  (void)flush_held();
  Sever(link);
  link.relays_done.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace gemini
