// FaultProxy: a deterministic, seeded fault-injection TCP proxy.
//
// Sits between a wire-protocol client (TcpCacheBackend/TcpConnection) and a
// server (TransportServer/geminid) on loopback and executes a *scripted
// fault schedule* against the byte stream: per-frame delays, partial-frame
// writes followed by a stall, mid-frame disconnects, byte truncation,
// connection resets at accept time, bandwidth throttling, and
// hold-N-frames-then-release bursts. The DES stresses the protocol with
// crashes; this stresses the *transport* with the hostile networks real
// deployments see — and because every decision is a pure function of
// (seed, connection index, direction, frame index), a failing schedule
// replays bit-identically from its seed.
//
// The proxy is frame-aware: it reassembles wire frames (wire::DecodeFrame)
// on each direction so faults land on frame boundaries ("delay the 7th
// response", "cut the connection after 40% of the 3rd request") rather than
// at arbitrary byte offsets. Bytes that never form a complete frame (a
// client speaking garbage) are forwarded verbatim.
//
// Faults are scripted per direction (client→server vs server→client) via
// DirectionProfile, and per connection implicitly: each accepted connection
// gets its own index and hence its own deterministic schedule. The first
// `skip_frames` frames of a direction are never faulted, so a test can let
// the HELLO handshake through and attack only data traffic.
//
// Threading: one accept thread plus two relay threads per proxied
// connection (one per direction). Stop() severs every stream and joins.
// This is test/tool infrastructure — it favors clarity over scale.
//
// tools/gemini_chaos.cc wraps this class as a standalone binary so a live
// geminid can be fronted by the same schedules.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace gemini {

class FaultProxy {
 public:
  enum class Direction : uint8_t { kClientToServer = 0, kServerToClient = 1 };

  enum class FaultKind : uint8_t {
    kNone = 0,
    /// Pause `delay`, then forward the frame intact.
    kDelay,
    /// Forward a prefix of the frame, pause `delay` mid-frame, then forward
    /// the rest (the partial-frame write + stall a slow or congested peer
    /// produces; trips SO_RCVTIMEO on the receiving side when long enough).
    kStall,
    /// Forward a prefix of the frame, then sever the connection both ways —
    /// the receiver sees EOF mid-frame.
    kCut,
    /// Forward a prefix, drop the rest of the frame, then sever — like kCut
    /// but the prefix fraction is drawn independently, and it is counted
    /// separately so tests can assert on the specific fault.
    kTruncate,
    /// Buffer this frame; it is released in one burst with its hold group
    /// (see DirectionProfile::hold_every/hold_count) or after hold_flush.
    kHold,
  };

  /// One scheduled decision: what happens to frame `frame_index` of one
  /// direction of one connection. `split` is the fraction of the frame
  /// forwarded before a kStall/kCut/kTruncate takes effect.
  struct PlannedFault {
    FaultKind kind = FaultKind::kNone;
    Duration delay = 0;
    double split = 0.5;
  };

  /// Fault mix for one direction of every connection. Probabilities are per
  /// frame and drawn independently (cut first, then truncate, stall, delay);
  /// hold groups are positional (every `hold_every` frames, the next
  /// `hold_count` are buffered) so they compose with the probabilistic
  /// faults deterministically.
  struct DirectionProfile {
    /// Never fault the first N frames of this direction (N=1 lets HELLO or
    /// its response through untouched).
    uint32_t skip_frames = 0;
    double delay_prob = 0.0;
    Duration delay_min = 0;
    Duration delay_max = Millis(2);
    double stall_prob = 0.0;
    /// Mid-frame pause length for kStall.
    Duration stall = Millis(50);
    double cut_prob = 0.0;
    double truncate_prob = 0.0;
    /// hold_every > 0 buffers `hold_count` frames out of every `hold_every`
    /// (the tail of each group), releasing them in one burst.
    uint32_t hold_every = 0;
    uint32_t hold_count = 0;
    /// Cap on forwarding rate; 0 = unthrottled. Applied by chunking sends.
    uint64_t throttle_bytes_per_sec = 0;
  };

  struct Options {
    /// Root of every scheduling decision; same seed + same profiles =>
    /// identical schedule, byte for byte.
    uint64_t seed = 1;
    /// Probability an accepted connection is reset (RST) before any byte is
    /// proxied; decided per connection index.
    double reset_on_accept_prob = 0.0;
    DirectionProfile client_to_server;
    DirectionProfile server_to_client;
    /// Held frames are flushed after this long even if their group never
    /// completes, so a hold can delay but never deadlock a request/response
    /// exchange.
    Duration hold_flush = Millis(20);
    /// Dial timeout for the upstream leg of each proxied connection.
    Duration upstream_connect_timeout = Seconds(2);
  };

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_reset_on_accept = 0;
    uint64_t frames_forwarded = 0;
    uint64_t bytes_forwarded = 0;
    uint64_t delays = 0;
    uint64_t stalls = 0;
    uint64_t cuts = 0;
    uint64_t truncations = 0;
    uint64_t holds = 0;
  };

  /// Proxies 127.0.0.1:<port()> -> upstream_host:upstream_port.
  FaultProxy(std::string upstream_host, uint16_t upstream_port,
             Options options);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Binds an ephemeral loopback port and starts accepting.
  Status Start();
  /// Severs every proxied stream and joins all threads; idempotent.
  void Stop();

  /// The proxy's listen port (valid after Start()).
  [[nodiscard]] uint16_t port() const { return port_; }

  [[nodiscard]] Stats stats() const;

  /// The schedule, as a pure function: the fault assigned to frame
  /// `frame_index` of `direction` on connection `conn_index`. Depends only
  /// on (options.seed, the profiles, the three indices) — never on timing —
  /// which is what makes a chaos run reproducible from its seed.
  [[nodiscard]] PlannedFault PlanFor(uint64_t conn_index, Direction direction,
                                     uint64_t frame_index) const;
  /// Whether connection `conn_index` is reset at accept (same determinism).
  [[nodiscard]] bool ResetOnAccept(uint64_t conn_index) const;

 private:
  struct Link;

  void AcceptLoop();
  void Relay(Link& link, Direction direction);
  /// Forwards `bytes` to the destination fd of `direction`, applying the
  /// throttle; returns false when the link died.
  bool Forward(Link& link, Direction direction, std::string_view bytes);
  void Sever(Link& link);
  void ReapFinishedLinks();

  const std::string upstream_host_;
  const uint16_t upstream_port_;
  const Options options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex links_mu_;
  std::vector<std::unique_ptr<Link>> links_;
  uint64_t next_conn_index_ = 0;

  // Counters are written by relay/accept threads, read by stats().
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_reset_{0};
  std::atomic<uint64_t> frames_forwarded_{0};
  std::atomic<uint64_t> bytes_forwarded_{0};
  std::atomic<uint64_t> delays_{0};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> cuts_{0};
  std::atomic<uint64_t> truncations_{0};
  std::atomic<uint64_t> holds_{0};
};

}  // namespace gemini
