#include "src/transport/tcp_connection.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <unordered_map>

namespace gemini {

namespace {

Status SocketError(const char* what) {
  return Status(Code::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int optname, Duration d) {
  if (d <= 0) return;
  struct timeval tv;
  tv.tv_sec = d / kSecond;
  tv.tv_usec = d % kSecond;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

}  // namespace

TcpConnection::TcpConnection(std::string host, uint16_t port,
                             InstanceId target_instance, Options options)
    : host_(std::move(host)),
      port_(port),
      target_instance_(target_instance),
      options_(options) {}

TcpConnection::~TcpConnection() { Disconnect(); }

std::shared_ptr<TcpConnection> TcpConnection::Acquire(
    const std::string& host, uint16_t port, InstanceId target_instance,
    const Options& options) {
  static std::mutex pool_mu;
  static std::unordered_map<std::string, std::weak_ptr<TcpConnection>>* pool =
      new std::unordered_map<std::string, std::weak_ptr<TcpConnection>>();

  const std::string key =
      host + ":" + std::to_string(port) + "#" + std::to_string(target_instance);
  std::lock_guard<std::mutex> lock(pool_mu);
  // Prune dead entries so ephemeral test servers don't accumulate.
  for (auto it = pool->begin(); it != pool->end();) {
    it = it->second.expired() ? pool->erase(it) : std::next(it);
  }
  if (auto existing = (*pool)[key].lock()) return existing;
  auto conn =
      std::make_shared<TcpConnection>(host, port, target_instance, options);
  (*pool)[key] = conn;
  return conn;
}

bool TcpConnection::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

InstanceId TcpConnection::remote_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_id_;
}

Status TcpConnection::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return ConnectLocked();
}

void TcpConnection::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  DisconnectLocked();
}

void TcpConnection::DisconnectLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recv_buf_.clear();
}

Status TcpConnection::ConnectLocked() {
  if (fd_ >= 0) return Status::Ok();

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port_);
  if (::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status(Code::kUnavailable, "cannot resolve " + host_);
  }

  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return SocketError("socket");
  }

  // Non-blocking connect with a poll()-based timeout, then back to blocking
  // with per-call IO timeouts.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return SocketError("connect");
  }
  if (rc != 0) {
    struct pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(options_.connect_timeout / kMillisecond);
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status(Code::kUnavailable,
                    "connect to " + host_ + ":" + port_str +
                        (rc <= 0 ? " timed out" : " refused"));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_RCVTIMEO, options_.io_timeout);
  SetTimeout(fd, SO_SNDTIMEO, options_.io_timeout);
  fd_ = fd;
  recv_buf_.clear();

  // HELLO: version exchange + instance selection. kAnyInstance asks for
  // the server's default (what a v1 client would have gotten).
  std::string body;
  wire::PutU32(body, wire::kProtocolVersion);
  wire::PutU32(body, target_instance_);
  std::string resp;
  Status s = TransactLocked(wire::Op::kHello, body, &resp);
  if (!s.ok()) {
    DisconnectLocked();
    if (s.code() == Code::kInvalidArgument) {
      return Status(Code::kInternal, "protocol version rejected by server: " +
                                         s.message());
    }
    // kWrongInstance (the server does not host the target) and transport
    // errors pass through untouched.
    return s;
  }
  wire::Reader r(resp);
  uint32_t version = 0, instance_id = 0;
  if (!r.GetU32(&version) || !r.GetU32(&instance_id) || !r.Done() ||
      version != wire::kProtocolVersion) {
    DisconnectLocked();
    return Status(Code::kInternal, "malformed HELLO response");
  }
  if (target_instance_ != wire::kAnyInstance &&
      instance_id != target_instance_) {
    DisconnectLocked();
    return Status(Code::kWrongInstance,
                  "server bound instance " + std::to_string(instance_id) +
                      ", wanted " + std::to_string(target_instance_));
  }
  remote_id_ = instance_id;
  return Status::Ok();
}

Status TcpConnection::EnsureConnectedLocked() {
  if (fd_ >= 0) return Status::Ok();
  if (!options_.auto_reconnect) {
    return Status(Code::kUnavailable, "not connected");
  }
  return ConnectLocked();
}

Status TcpConnection::SendAllLocked(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return SocketError("send");
  }
  return Status::Ok();
}

Status TcpConnection::ReadFrameLocked(uint8_t* tag, std::string* body) {
  char buf[64 * 1024];
  for (;;) {
    size_t consumed = 0;
    std::string_view view;
    const wire::DecodeResult r =
        wire::DecodeFrame(recv_buf_, &consumed, tag, &view);
    if (r == wire::DecodeResult::kFrame) {
      body->assign(view);
      recv_buf_.erase(0, consumed);
      return Status::Ok();
    }
    if (r == wire::DecodeResult::kMalformed) {
      return Status(Code::kInternal, "malformed response frame");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_buf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status(Code::kUnavailable, "server closed connection");
    return SocketError("recv");
  }
}

Status TcpConnection::Transact(wire::Op op, std::string_view body,
                               std::string* resp_body) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  return TransactLocked(op, body, resp_body);
}

Status TcpConnection::TransactLocked(wire::Op op, std::string_view body,
                                     std::string* resp_body) {
  std::string frame;
  frame.reserve(wire::kFrameHeaderLen + body.size());
  wire::AppendRequest(frame, op, body);
  Status s = SendAllLocked(frame);
  uint8_t tag = 0;
  if (s.ok()) s = ReadFrameLocked(&tag, resp_body);
  if (!s.ok()) {
    // The request/response stream is torn (bytes may be half-sent or
    // half-read); drop the socket so the next call starts clean.
    DisconnectLocked();
    return s;
  }
  const Code code = wire::CodeFromWire(tag);
  if (code == Code::kOk) return Status::Ok();
  // Non-ok reply: the body optionally carries a message blob.
  wire::Reader r(*resp_body);
  std::string_view message;
  if (r.GetBlob(&message) && r.Done() && !message.empty()) {
    return Status(code, std::string(message));
  }
  return Status(code);
}

Result<std::vector<InstanceId>> TcpConnection::ListInstances() {
  std::string resp;
  if (Status s = Transact(wire::Op::kInstanceList, {}, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint32_t count = 0;
  if (!r.GetU32(&count)) {
    return Status(Code::kInternal, "malformed INSTANCE_LIST response");
  }
  std::vector<InstanceId> ids;
  ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    if (!r.GetU32(&id)) {
      return Status(Code::kInternal, "malformed INSTANCE_LIST response");
    }
    ids.push_back(id);
  }
  if (!r.Done()) {
    return Status(Code::kInternal, "malformed INSTANCE_LIST response");
  }
  return ids;
}

}  // namespace gemini
