#include "src/transport/tcp_connection.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace gemini {

namespace {

Status SocketError(const char* what) {
  return Status(Code::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int optname, Duration d) {
  if (d <= 0) return;
  struct timeval tv;
  tv.tv_sec = d / kSecond;
  tv.tv_usec = d % kSecond;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

Status SendAllFd(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return SocketError("send");
  }
  return Status::Ok();
}

/// Sends every queued frame in gathered bursts: an iovec per frame feeds
/// sendmsg(2), so write coalescing costs no memcpy into a contiguous
/// buffer. Partial writes advance an offset into the chain and resend the
/// remainder.
Status SendFramesFd(int fd, const std::deque<std::string>& frames) {
  constexpr size_t kMaxIov = 64;
  size_t idx = 0;     // first frame not yet fully sent
  size_t offset = 0;  // bytes of frames[idx] already sent
  while (idx < frames.size()) {
    struct iovec iov[kMaxIov];
    size_t n = 0;
    for (size_t i = idx; i < frames.size() && n < kMaxIov; ++i) {
      const std::string& f = frames[i];
      const size_t skip = i == idx ? offset : 0;
      iov[n].iov_base = const_cast<char*>(f.data()) + skip;
      iov[n].iov_len = f.size() - skip;
      ++n;
    }
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = n;
    const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return SocketError("sendmsg");
    }
    size_t remaining = static_cast<size_t>(sent);
    while (idx < frames.size()) {
      const size_t left = frames[idx].size() - offset;
      if (remaining < left) {
        offset += remaining;
        break;
      }
      remaining -= left;
      offset = 0;
      ++idx;
    }
  }
  return Status::Ok();
}

/// Reads from `fd` into `buf` until one full frame is decodable; outputs its
/// tag and body and erases the consumed bytes. Used only for the synchronous
/// HELLO exchange, before the connection's reader thread owns the stream.
Status ReadFrameFd(int fd, std::string& buf, uint8_t* tag, std::string* body) {
  char chunk[64 * 1024];
  for (;;) {
    size_t consumed = 0;
    std::string_view view;
    const wire::DecodeResult r = wire::DecodeFrame(buf, &consumed, tag, &view);
    if (r == wire::DecodeResult::kFrame) {
      body->assign(view);
      buf.erase(0, consumed);
      return Status::Ok();
    }
    if (r == wire::DecodeResult::kMalformed) {
      return Status(Code::kInternal, "malformed response frame");
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status(Code::kUnavailable, "server closed connection");
    return SocketError("recv");
  }
}

/// Decodes a non-ok response body's optional message blob.
Status StatusFromError(Code code, std::string_view body) {
  wire::Reader r(body);
  std::string_view message;
  if (r.GetBlob(&message) && r.Done() && !message.empty()) {
    return Status(code, std::string(message));
  }
  return Status(code);
}

}  // namespace

TcpConnection::Socket::~Socket() {
  if (fd >= 0) ::close(fd);
}

void TcpConnection::Socket::ShutdownBoth() const {
  ::shutdown(fd, SHUT_RDWR);
}

TcpConnection::TcpConnection(std::string host, uint16_t port,
                             InstanceId target_instance, Options options)
    : host_(std::move(host)),
      port_(port),
      target_instance_(target_instance),
      options_(options) {}

TcpConnection::~TcpConnection() {
  std::deque<Completion> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    victims = TearLocked();
  }
  FailAll(victims, "connection destroyed");
  if (writer_.joinable()) writer_.join();
  if (reader_.joinable()) reader_.join();
}

std::shared_ptr<TcpConnection> TcpConnection::Acquire(
    const std::string& host, uint16_t port, InstanceId target_instance,
    const Options& options) {
  static std::mutex pool_mu;
  static std::unordered_map<std::string, std::weak_ptr<TcpConnection>>* pool =
      new std::unordered_map<std::string, std::weak_ptr<TcpConnection>>();

  const std::string key =
      host + ":" + std::to_string(port) + "#" + std::to_string(target_instance);
  std::lock_guard<std::mutex> lock(pool_mu);
  // Prune dead entries so ephemeral test servers don't accumulate.
  for (auto it = pool->begin(); it != pool->end();) {
    it = it->second.expired() ? pool->erase(it) : std::next(it);
  }
  if (auto existing = (*pool)[key].lock()) return existing;
  auto conn =
      std::make_shared<TcpConnection>(host, port, target_instance, options);
  (*pool)[key] = conn;
  return conn;
}

bool TcpConnection::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sock_ != nullptr;
}

InstanceId TcpConnection::remote_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_id_;
}

Status TcpConnection::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return ConnectLocked();
}

void TcpConnection::Disconnect() {
  std::deque<Completion> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    victims = TearLocked();
  }
  FailAll(victims, "disconnected");
}

std::deque<TcpConnection::Completion> TcpConnection::TearLocked() {
  if (sock_ != nullptr) {
    // Shutdown (not close) interrupts any thread blocked in send/recv; the
    // fd itself is closed when the last Socket reference drops, so a thread
    // still holding the epoch can never race fd-number reuse.
    sock_->ShutdownBoth();
    sock_.reset();
  }
  send_queue_.clear();
  std::deque<Completion> victims;
  victims.swap(inflight_);
  writer_cv_.notify_all();
  reader_cv_.notify_all();
  window_cv_.notify_all();
  return victims;
}

void TcpConnection::FailAll(std::deque<Completion>& victims,
                            const std::string& why) {
  for (auto& done : victims) done(Status(Code::kUnavailable, why), {});
  victims.clear();
}

TcpConnection::BreakerState TcpConnection::breaker_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.breaker_failure_threshold <= 0 ||
      consecutive_dial_failures_ < options_.breaker_failure_threshold) {
    return BreakerState::kClosed;
  }
  return SystemClock::Global().Now() < breaker_open_until_
             ? BreakerState::kOpen
             : BreakerState::kHalfOpen;
}

Status TcpConnection::ConnectLocked() {
  if (sock_ != nullptr) return Status::Ok();

  // Circuit breaker: while open, fail fast — no dial, no connect_timeout.
  // Once the cooldown passes, exactly one caller (mu_ serializes us) runs
  // the half-open probe dial below; success closes the breaker, failure
  // re-opens it for another cooldown.
  if (options_.breaker_failure_threshold > 0 &&
      consecutive_dial_failures_ >= options_.breaker_failure_threshold &&
      SystemClock::Global().Now() < breaker_open_until_) {
    return Status(Code::kUnavailable,
                  "circuit breaker open for " + host_ + ":" +
                      std::to_string(port_) + " after " +
                      std::to_string(consecutive_dial_failures_) +
                      " consecutive dial failures");
  }

  Status s = DialLocked();
  if (s.ok()) {
    consecutive_dial_failures_ = 0;
  } else if (s.code() == Code::kUnavailable) {
    // Only transport-level failures trip the breaker; kWrongInstance and
    // protocol mismatches are configuration errors the caller must see
    // verbatim every time.
    ++consecutive_dial_failures_;
    breaker_open_until_ =
        SystemClock::Global().Now() + options_.breaker_cooldown;
  }
  return s;
}

Status TcpConnection::DialLocked() {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port_);
  if (::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status(Code::kUnavailable, "cannot resolve " + host_);
  }

  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return SocketError("socket");
  }

  // Non-blocking connect with a poll()-based timeout, then back to blocking
  // with per-call IO timeouts.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return SocketError("connect");
  }
  if (rc != 0) {
    struct pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(options_.connect_timeout / kMillisecond);
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status(Code::kUnavailable,
                    "connect to " + host_ + ":" + port_str +
                        (rc <= 0 ? " timed out" : " refused"));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_RCVTIMEO, options_.io_timeout);
  SetTimeout(fd, SO_SNDTIMEO, options_.io_timeout);

  // HELLO: version exchange + instance selection, run synchronously on this
  // thread *before* the epoch is published — the reader and writer threads
  // never see handshake bytes. kAnyInstance asks for the server's default
  // (what a v1 client would have gotten).
  std::string body;
  wire::PutU32(body, wire::kProtocolVersion);
  wire::PutU32(body, target_instance_);
  std::string frame;
  wire::AppendRequest(frame, wire::Op::kHello, body);
  std::string stream;
  uint8_t tag = 0;
  std::string resp;
  Status s = SendAllFd(fd, frame);
  if (s.ok()) s = ReadFrameFd(fd, stream, &tag, &resp);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  if (const Code code = wire::CodeFromWire(tag); code != Code::kOk) {
    ::close(fd);
    Status err = StatusFromError(code, resp);
    if (code == Code::kInvalidArgument) {
      return Status(Code::kInternal, "protocol version rejected by server: " +
                                         err.message());
    }
    // kWrongInstance (the server does not host the target) and transport
    // errors pass through untouched.
    return err;
  }
  wire::Reader r(resp);
  uint32_t version = 0, instance_id = 0;
  if (!r.GetU32(&version) || !r.GetU32(&instance_id) || !r.Done() ||
      version != wire::kProtocolVersion) {
    ::close(fd);
    return Status(Code::kInternal, "malformed HELLO response");
  }
  if (target_instance_ != wire::kAnyInstance &&
      instance_id != target_instance_) {
    ::close(fd);
    return Status(Code::kWrongInstance,
                  "server bound instance " + std::to_string(instance_id) +
                      ", wanted " + std::to_string(target_instance_));
  }
  remote_id_ = instance_id;
  sock_ = std::make_shared<Socket>(fd);
  sock_->recv_buf = std::move(stream);  // bytes the server sent past HELLO
  if (!threads_started_) {
    threads_started_ = true;
    writer_ = std::thread(&TcpConnection::WriterLoop, this);
    reader_ = std::thread(&TcpConnection::ReaderLoop, this);
  }
  // A push-interested reader starts pumping the fresh epoch immediately,
  // without waiting for the next request.
  if (push_interest_) reader_cv_.notify_one();
  return Status::Ok();
}

Status TcpConnection::EnsureConnectedLocked() {
  if (sock_ != nullptr) return Status::Ok();
  if (!options_.auto_reconnect) {
    return Status(Code::kUnavailable, "not connected");
  }
  return ConnectLocked();
}

void TcpConnection::SubmitAsync(wire::Op op, std::string_view body,
                                Completion done) {
  const size_t window = std::max<size_t>(1, options_.max_inflight);
  std::unique_lock<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) {
    lock.unlock();
    done(std::move(s), {});
    return;
  }
  // Backpressure: wait for a window slot on *this* epoch. A teardown while
  // we wait (sock_ changed or cleared) fails the request instead of silently
  // enqueuing onto a different connection.
  const std::shared_ptr<Socket> sock = sock_;
  window_cv_.wait(lock, [&] {
    return shutdown_ || sock_ != sock || inflight_.size() < window;
  });
  if (shutdown_ || sock_ != sock) {
    lock.unlock();
    done(Status(Code::kUnavailable, "connection dropped"), {});
    return;
  }
  std::string frame;
  wire::AppendRequest(frame, op, body);
  send_queue_.push_back(std::move(frame));
  inflight_.push_back(std::move(done));
  writer_cv_.notify_one();
  reader_cv_.notify_one();
}

void TcpConnection::AddPushHandler(PushHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  auto next = push_handlers_ != nullptr
                  ? std::make_shared<std::vector<PushHandler>>(*push_handlers_)
                  : std::make_shared<std::vector<PushHandler>>();
  next->push_back(std::move(handler));
  push_handlers_ = std::move(next);
  push_interest_ = true;
  reader_cv_.notify_one();
}

void TcpConnection::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    writer_cv_.wait(lock, [&] {
      return shutdown_ || (sock_ != nullptr && !send_queue_.empty());
    });
    if (shutdown_) return;
    const std::shared_ptr<Socket> sock = sock_;
    // Write coalescing, zero-copy: take every frame queued since the last
    // wakeup and push the whole set through one gathered sendmsg(2) — under
    // load, many small frames ride one syscall (and one TCP segment, with
    // TCP_NODELAY) without ever being memcpy'd into a contiguous buffer.
    std::deque<std::string> out;
    out.swap(send_queue_);
    lock.unlock();
    const Status s = SendFramesFd(sock->fd, out);
    lock.lock();
    if (!s.ok() && sock_ == sock) {
      auto victims = TearLocked();
      lock.unlock();
      FailAll(victims, s.message());
      lock.lock();
    }
  }
}

void TcpConnection::ReaderLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    reader_cv_.wait(lock, [&] {
      return shutdown_ ||
             (sock_ != nullptr && (!inflight_.empty() || push_interest_));
    });
    if (shutdown_) return;
    const std::shared_ptr<Socket> sock = sock_;
    // Drain responses while this epoch stays current and requests are in
    // flight. Responses match requests by position (FIFO per connection,
    // docs/PROTOCOL.md §10.6). Under push interest the reader keeps pumping
    // even with an empty window, so unsolicited frames arrive promptly.
    while (!shutdown_ && sock_ == sock &&
           (!inflight_.empty() || push_interest_)) {
      size_t consumed = 0;
      uint8_t tag = 0;
      std::string_view view;
      const wire::DecodeResult r =
          wire::DecodeFrame(sock->recv_buf, &consumed, &tag, &view);
      if (r == wire::DecodeResult::kFrame) {
        std::string body(view);
        sock->recv_buf.erase(0, consumed);
        if (wire::IsPushTag(tag)) {
          // Unsolicited server push: route out of band; the response FIFO
          // is untouched.
          const auto handlers = push_handlers_;
          lock.unlock();
          if (handlers != nullptr) {
            for (const PushHandler& h : *handlers) h(tag, body);
          }
          lock.lock();
          continue;
        }
        if (inflight_.empty()) {
          // A response-tagged frame with nothing in flight (only reachable
          // in push-interest mode): the server desynced; drop the
          // connection rather than mis-match a future request.
          auto victims = TearLocked();
          lock.unlock();
          FailAll(victims, "unsolicited response frame");
          lock.lock();
          break;
        }
        Completion done = std::move(inflight_.front());
        inflight_.pop_front();
        window_cv_.notify_one();
        lock.unlock();
        CompleteFromFrame(done, tag, std::move(body));
        lock.lock();
        continue;
      }
      if (r == wire::DecodeResult::kMalformed) {
        // The stream is unparseable; attribute the malformed frame to the
        // oldest in-flight request and drop everything behind it.
        auto victims = TearLocked();
        lock.unlock();
        if (!victims.empty()) {
          Completion first = std::move(victims.front());
          victims.pop_front();
          first(Status(Code::kInternal, "malformed response frame"), {});
        }
        FailAll(victims, "connection dropped after malformed frame");
        lock.lock();
        break;
      }
      // kNeedMore: block in recv with the lock released so submitters and
      // Disconnect() stay unblocked; ShutdownBoth() interrupts the call.
      lock.unlock();
      char chunk[64 * 1024];
      const ssize_t n = ::recv(sock->fd, chunk, sizeof(chunk), 0);
      const int recv_errno = errno;
      lock.lock();
      if (sock_ != sock) break;  // torn down while we were blocked
      if (n > 0) {
        sock->recv_buf.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && recv_errno == EINTR) continue;
      if (n < 0 && (recv_errno == EAGAIN || recv_errno == EWOULDBLOCK) &&
          inflight_.empty()) {
        // Idle push-interest poll: SO_RCVTIMEO expired with no response
        // owed and no partial frame at risk — keep listening.
        continue;
      }
      errno = recv_errno;
      Status err;
      if (n == 0) {
        err = Status(Code::kUnavailable, "server closed connection");
      } else if (recv_errno == EAGAIN || recv_errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired with responses outstanding — possibly mid-
        // frame (partial bytes buffered). The reader cannot tell a stalled
        // peer from a dead one, and resuming this stream later would
        // desync the FIFO, so the timeout is connection-fatal: fail the
        // whole in-flight window and force a redial.
        err = Status(Code::kUnavailable,
                     "recv timed out awaiting response (" +
                         std::to_string(sock->recv_buf.size()) +
                         " bytes of a frame buffered); dropping connection");
      } else {
        err = SocketError("recv");
      }
      auto victims = TearLocked();
      lock.unlock();
      FailAll(victims, err.message());
      lock.lock();
      break;
    }
  }
}

void TcpConnection::CompleteFromFrame(const Completion& done, uint8_t tag,
                                      std::string body) {
  const Code code = wire::CodeFromWire(tag);
  if (code == Code::kOk) {
    done(Status::Ok(), std::move(body));
    return;
  }
  done(StatusFromError(code, body), {});
}

Status TcpConnection::TransactOnce(wire::Op op, std::string_view body,
                                   std::string* resp_body) {
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::Ok();
    std::string body;
  } w;
  SubmitAsync(op, body, [&w](Status s, std::string b) {
    std::lock_guard<std::mutex> lk(w.mu);
    w.status = std::move(s);
    w.body = std::move(b);
    w.done = true;
    w.cv.notify_one();
  });
  std::unique_lock<std::mutex> lk(w.mu);
  w.cv.wait(lk, [&] { return w.done; });
  if (resp_body != nullptr) *resp_body = std::move(w.body);
  return w.status;
}

Duration TcpConnection::BackoffBeforeAttempt(const RetryPolicy& policy,
                                             int attempt, Duration elapsed,
                                             uint64_t salt) {
  if (policy.deadline > 0 && elapsed >= policy.deadline) return -1;
  // Exponential cap: initial_backoff doubled per completed attempt, bounded
  // by max_backoff.
  Duration cap = std::max<Duration>(0, policy.initial_backoff);
  for (int i = 2; i < attempt && cap < policy.max_backoff; ++i) cap *= 2;
  cap = std::min(cap, std::max<Duration>(0, policy.max_backoff));
  Duration sleep = 0;
  if (cap > 0) {
    // Full jitter: uniform in [0, cap]. Decorrelates retry storms across
    // clients (and across the slots of one MultiGet).
    Rng rng(Mix64(policy.jitter_seed ^ salt ^
                  (static_cast<uint64_t>(attempt) * 0x9E3779B97f4A7C15ULL)));
    sleep = static_cast<Duration>(
        rng.NextBounded(static_cast<uint64_t>(cap) + 1));
  }
  if (policy.deadline > 0) {
    // Never sleep past the budget; if the remaining budget is all sleep,
    // there is no room left for the attempt itself, so stop.
    const Duration remaining = policy.deadline - elapsed;
    if (sleep >= remaining) return -1;
  }
  return sleep;
}

Status TcpConnection::Transact(wire::Op op, std::string_view body,
                               std::string* resp_body) {
  const RetryPolicy& policy = options_.retry;
  const int max_attempts =
      (policy.max_attempts > 1 && wire::IsIdempotentOp(op))
          ? policy.max_attempts
          : 1;
  const Timestamp start = SystemClock::Global().Now();
  const uint64_t salt =
      Fnv1a64(host_) ^ (static_cast<uint64_t>(port_) << 16) ^
      static_cast<uint64_t>(op);
  for (int attempt = 1;; ++attempt) {
    Status s = TransactOnce(op, body, resp_body);
    // Only kUnavailable (connection-level failure) is retryable; every
    // other code is the server's definitive answer. Non-idempotent ops
    // never reach here with max_attempts > 1.
    if (s.ok() || s.code() != Code::kUnavailable || attempt >= max_attempts) {
      return s;
    }
    const Duration elapsed = SystemClock::Global().Now() - start;
    const Duration sleep =
        BackoffBeforeAttempt(policy, attempt + 1, elapsed, salt);
    if (sleep < 0) return s;  // deadline budget exhausted
    if (sleep > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep));
    }
  }
}

std::vector<TcpConnection::BatchResponse> TcpConnection::TransactBatch(
    const std::vector<BatchRequest>& reqs) {
  std::vector<BatchResponse> out(reqs.size());
  if (reqs.empty()) return out;
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = reqs.size();
  for (size_t i = 0; i < reqs.size(); ++i) {
    // Submissions past the window block until earlier responses free slots,
    // so arbitrarily large batches stream through without growing the queue.
    SubmitAsync(reqs[i].op, reqs[i].body, [&, i](Status s, std::string b) {
      std::lock_guard<std::mutex> lk(mu);
      out[i].status = std::move(s);
      out[i].body = std::move(b);
      if (--pending == 0) cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return pending == 0; });
  return out;
}

Result<std::vector<InstanceId>> TcpConnection::ListInstances() {
  std::string resp;
  if (Status s = Transact(wire::Op::kInstanceList, {}, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint32_t count = 0;
  if (!r.GetU32(&count)) {
    return Status(Code::kInternal, "malformed INSTANCE_LIST response");
  }
  std::vector<InstanceId> ids;
  ids.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    if (!r.GetU32(&id)) {
      return Status(Code::kInternal, "malformed INSTANCE_LIST response");
    }
    ids.push_back(id);
  }
  if (!r.Done()) {
    return Status(Code::kInternal, "malformed INSTANCE_LIST response");
  }
  return ids;
}

}  // namespace gemini
