#include "src/transport/wire.h"

#include <cstring>

namespace gemini {
namespace wire {

bool IsKnownOp(uint8_t op) {
  switch (static_cast<Op>(op)) {
    case Op::kHello:
    case Op::kPing:
    case Op::kInstanceList:
    case Op::kGet:
    case Op::kSet:
    case Op::kDelete:
    case Op::kCas:
    case Op::kAppend:
    case Op::kMultiSet:
    case Op::kMultiDelete:
    case Op::kIqGet:
    case Op::kIqSet:
    case Op::kQareg:
    case Op::kDar:
    case Op::kRar:
    case Op::kISet:
    case Op::kIDelete:
    case Op::kWriteBackInstall:
    case Op::kRedAcquire:
    case Op::kRedRelease:
    case Op::kRedRenew:
    case Op::kDirtyListGet:
    case Op::kDirtyListAppend:
    case Op::kWorkingSetScan:
    case Op::kConfigIdGet:
    case Op::kConfigIdBump:
    case Op::kSnapshot:
    case Op::kStats:
    case Op::kLeaseGrant:
    case Op::kLeaseRevoke:
    case Op::kCoordRegister:
    case Op::kCoordHeartbeat:
    case Op::kCoordConfigGet:
    case Op::kCoordConfigWatch:
    case Op::kCoordReport:
    case Op::kCoordDirtyQuery:
    case Op::kCoordShadowSync:
      return true;
  }
  return false;
}

bool IsIdempotentOp(Op op) {
  switch (op) {
    case Op::kPing:
    case Op::kInstanceList:
    case Op::kGet:
    case Op::kDirtyListGet:
    case Op::kWorkingSetScan:  // pure read over a stable cursor
    case Op::kConfigIdGet:
    case Op::kConfigIdBump:  // ObserveConfigId is a max-merge
    case Op::kStats:
    case Op::kLeaseGrant:   // coordinator serializes publishes; re-grant is
    case Op::kLeaseRevoke:  // a no-op re-apply, latest ids max-merge
    case Op::kCoordRegister:
    case Op::kCoordHeartbeat:
    case Op::kCoordConfigGet:
    case Op::kCoordConfigWatch:
    case Op::kCoordDirtyQuery:
    case Op::kCoordShadowSync:  // replaces the receiver's replica of the
                                // state wholesale; re-applying is a no-op
      return true;
    default:
      return false;
  }
}

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutKey(std::string& out, std::string_view key) {
  PutU16(out, static_cast<uint16_t>(key.size()));
  out.append(key);
}

void PutBlob(std::string& out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out.append(bytes);
}

void PutValue(std::string& out, const CacheValue& value) {
  PutBlob(out, value.data);
  PutU32(out, value.charged_bytes);
  PutU64(out, value.version);
}

void PutContext(std::string& out, const OpContext& ctx) {
  PutU64(out, ctx.config_id);
  PutU32(out, ctx.fragment);
}

bool Reader::GetRaw(void* out, size_t n) {
  if (data_.size() < n) return false;
  std::memcpy(out, data_.data(), n);
  data_.remove_prefix(n);
  return true;
}

bool Reader::GetU8(uint8_t* v) { return GetRaw(v, 1); }

bool Reader::GetU16(uint16_t* v) {
  uint8_t b[2];
  if (!GetRaw(b, 2)) return false;
  *v = static_cast<uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  uint8_t b[4];
  if (!GetRaw(b, 4)) return false;
  *v = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
       (static_cast<uint32_t>(b[2]) << 16) |
       (static_cast<uint32_t>(b[3]) << 24);
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!GetU32(&lo) || !GetU32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool Reader::GetKey(std::string_view* key) {
  uint16_t len = 0;
  if (!GetU16(&len)) return false;
  if (data_.size() < len) return false;
  *key = data_.substr(0, len);
  data_.remove_prefix(len);
  return true;
}

bool Reader::GetBlob(std::string_view* bytes) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  if (data_.size() < len) return false;
  *bytes = data_.substr(0, len);
  data_.remove_prefix(len);
  return true;
}

bool Reader::GetValue(CacheValue* value) {
  std::string_view data;
  uint32_t charged = 0;
  uint64_t version = 0;
  if (!GetBlob(&data) || !GetU32(&charged) || !GetU64(&version)) return false;
  value->data.assign(data);
  value->charged_bytes = charged;
  value->version = version;
  return true;
}

bool Reader::GetContext(OpContext* ctx) {
  uint64_t config_id = 0;
  uint32_t fragment = 0;
  if (!GetU64(&config_id) || !GetU32(&fragment)) return false;
  ctx->config_id = config_id;
  ctx->fragment = fragment;
  return true;
}

void AppendFrame(std::string& out, uint8_t tag, std::string_view body) {
  PutU32(out, static_cast<uint32_t>(1 + body.size()));
  PutU8(out, tag);
  out.append(body);
}

DecodeResult DecodeFrame(std::string_view buf, size_t* consumed, uint8_t* tag,
                         std::string_view* body) {
  if (buf.size() < 4) return DecodeResult::kNeedMore;
  Reader header(buf);
  uint32_t len = 0;
  header.GetU32(&len);
  if (len < 1 || len > kMaxFrameLen) return DecodeResult::kMalformed;
  if (buf.size() < 4 + static_cast<size_t>(len)) return DecodeResult::kNeedMore;
  *tag = static_cast<uint8_t>(buf[4]);
  *body = buf.substr(kFrameHeaderLen, len - 1);
  *consumed = 4 + static_cast<size_t>(len);
  return DecodeResult::kFrame;
}

Code CodeFromWire(uint8_t tag) {
  if (tag > static_cast<uint8_t>(Code::kNotMaster)) return Code::kInternal;
  return static_cast<Code>(tag);
}

}  // namespace wire
}  // namespace gemini
