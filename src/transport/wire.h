// The geminid wire protocol: framing and body codecs.
//
// Everything that crosses a socket between TcpCacheBackend and a geminid
// server is a *frame*:
//
//   u32 len | u8 tag | payload            (len = 1 + payload size)
//
// all integers little-endian. For a request the tag is an opcode (Op below);
// for a response it is a status code (the wire value of gemini::Code — the
// enum's numeric values are frozen by this protocol, append-only). A
// connection starts with a HELLO exchange carrying the protocol version and,
// since v2, the instance the client wants to talk to (a geminid hosts many
// CacheInstances behind one event loop); the server answers with the bound
// instance's id. After that, requests may be pipelined: a client may have
// several frames in flight, and the server answers them strictly in arrival
// order — responses carry no correlation id, so FIFO-per-connection ordering
// (docs/PROTOCOL.md §10.6) is the matching rule.
//
// Body grammar (docs/PROTOCOL.md §10 is the normative spec):
//   key   = u16 len | bytes               (max 64 KiB - 1)
//   blob  = u32 len | bytes
//   value = blob data | u32 charged_bytes | u64 version
//   ctx   = u64 config_id | u32 fragment
//
// Decoding never over-reads: every Get* checks the remaining span first, and
// DecodeFrame refuses to consume bytes until the full frame has arrived.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/cache/cache_backend.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace gemini {
namespace wire {

/// Bumped on any incompatible change; HELLO negotiates it. The HELLO body is
/// append-only across versions (like the status-code space): v1 carries
/// `u32 version`, v2 appends `u32 instance_id`. A v2 server recognizes a v1
/// HELLO by its announced version, binds the connection to its default
/// instance, and answers with version 1, so pre-refactor clients keep
/// working unchanged.
inline constexpr uint32_t kProtocolVersion = 2;

/// The lowest HELLO version a server still accepts.
inline constexpr uint32_t kMinProtocolVersion = 1;

/// Sentinel instance id in a v2 HELLO: "bind me to the server's default
/// instance" (whatever a v1 client would have gotten).
inline constexpr InstanceId kAnyInstance = kInvalidInstance;

/// Upper bound on `len`; a peer announcing more is malformed and the
/// connection is dropped (protects the read buffer from hostile frames).
inline constexpr uint32_t kMaxFrameLen = 16u << 20;

/// Keys are length-prefixed with a u16.
inline constexpr size_t kMaxKeyLen = 0xFFFF;

/// Frame header: u32 len + u8 tag.
inline constexpr size_t kFrameHeaderLen = 5;

enum class Op : uint8_t {
  // Session management.
  kHello = 0x01,  // u32 version [| u32 instance_id (v2)]
                  //                        -> u32 version | u32 instance_id
  kPing = 0x02,   // empty                  -> empty
  kInstanceList = 0x03,  // empty           -> u32 count | count * u32 id

  // Plain data ops.
  kGet = 0x10,     // ctx | key              -> value
  kSet = 0x11,     // ctx | key | value      -> empty
  kDelete = 0x12,  // ctx | key              -> empty
  kCas = 0x13,     // ctx | key | u64 expected | value -> empty
  kAppend = 0x14,  // ctx | key | blob       -> empty

  // Pipelined bulk writes: one frame carries N independent single-key ops,
  // executed sequentially under the §10.6 FIFO contract, answered by ONE
  // kOk frame carrying a per-key status slot for each op:
  //   u32 count | count * u8 code
  // The frame-level tag reports only whether the batch parsed and ran; the
  // per-key outcome (kOk/kNotFound/kStaleConfig/...) lives in the slots.
  // Each entry carries its own ctx because a batch may span fragments,
  // exactly like MultiGet. Both ops are non-idempotent (a replayed batch
  // re-applies N writes), so clients fail the whole batch fast with
  // kUnavailable on transport loss — never retry, never split.
  kMultiSet = 0x15,     // u32 count | count * (ctx | key | value)
                        //                       -> u32 count | count * u8 code
  kMultiDelete = 0x16,  // u32 count | count * (ctx | key)
                        //                       -> u32 count | count * u8 code

  // IQ lease ops (Section 2.3) and recovery primitives (Algorithms 1-3).
  kIqGet = 0x20,    // ctx | key                    -> u8 hit | [value] | u64 token
  kIqSet = 0x21,    // ctx | key | u64 token | value -> empty
  kQareg = 0x22,    // ctx | key                    -> u64 token
  kDar = 0x23,      // ctx | key | u64 token        -> empty
  kRar = 0x24,      // ctx | key | u64 token | value -> empty
  kISet = 0x25,     // ctx | key                    -> u64 token
  kIDelete = 0x26,  // ctx | key | u64 token        -> empty
  kWriteBackInstall = 0x27,  // ctx | key | u64 token | value -> empty

  // Redleases (recovery workers).
  kRedAcquire = 0x30,  // key             -> u64 token
  kRedRelease = 0x31,  // key | u64 token -> empty
  kRedRenew = 0x32,    // key | u64 token -> empty

  // Dirty lists (Section 3.1): server-side aliases for get/append on
  // DirtyListKey(fragment), so remote clients need not know the key scheme.
  kDirtyListGet = 0x40,     // u64 config_id | u32 fragment        -> value
  kDirtyListAppend = 0x41,  // u64 config_id | u32 fragment | blob -> empty

  // Working-set scan (Section 3.2.2, docs/PROTOCOL.md §13): paginated,
  // priority-ordered enumeration of a fragment's hot keys on this instance.
  // The request carries the cluster's fragment count because the instance
  // does not know the fragment table — the server filters keys by
  // Fnv1a64(key) % num_fragments == ctx.fragment. Earlier pages are hotter
  // (approximate LRU priority bands); cursor 0 starts a scan, next_cursor 0
  // means done. Pure read — idempotent, resumable from any returned cursor.
  kWorkingSetScan = 0x42,  // ctx | u32 num_fragments | u64 cursor
                           //     | u32 max_keys
                           //     -> u64 next_cursor | u32 count
                           //        | count * (key | u32 charged_bytes)

  // Configuration ids (Rejig, Section 3.2.4).
  kConfigIdGet = 0x50,   // empty     -> u64 latest_config_id
  kConfigIdBump = 0x51,  // u64 latest -> empty

  // Persistence.
  kSnapshot = 0x60,  // blob path (empty = server default) -> empty

  // Introspection.
  kStats = 0x61,  // empty -> u32 count | count * (blob name | u64 value)

  // Fragment leases (coordinator -> instance control ops; docs/PROTOCOL.md
  // §12.3). Lease lifetimes cross the wire as TTLs relative to the
  // receiver's clock — processes do not share a clock, so an absolute
  // expiry would be meaningless on arrival.
  kLeaseGrant = 0x62,   // u32 fragment | u64 min_valid_config | u64 ttl_us
                        //                | u64 latest_config -> empty
  kLeaseRevoke = 0x63,  // u32 fragment | u64 latest_config -> empty

  // Coordinator control plane (docs/PROTOCOL.md §12). Served only by a
  // server with a coordinator attached; a plain geminid answers
  // kInvalidArgument.
  kCoordRegister = 0x70,   // u32 instance | blob host | u16 port
                           //                         -> u64 latest_config_id
  kCoordHeartbeat = 0x71,  // u32 count | count * u32 instance
                           //         -> u64 latest_config_id | u8 registered
                           // registered=0: some beaten instance is unknown
                           // or failed — the sender must re-register (a beat
                           // never revives a failed instance by itself).
  kCoordConfigGet = 0x72,  // empty -> blob serialized_configuration
  kCoordConfigWatch = 0x73,  // u64 known_config_id
                             //       -> blob serialized_configuration;
                             // also subscribes this connection to
                             // kPushConfig frames.
  kCoordReport = 0x74,      // u8 event (CoordEvent) | u32 fragment -> empty
  kCoordDirtyQuery = 0x75,  // u32 fragment -> u8 processed

  // Coordinator replication (docs/PROTOCOL.md §12.7): the master pushes its
  // full CoordinatorState to each shadow after every state-mutating event
  // and on a periodic beat. The frame carries the sender's master epoch and
  // election rank so the receiver can fence stale ex-masters: a receiver
  // that has seen a strictly newer claim answers kNotMaster, and the sender
  // must demote itself to shadow. A sync doubles as the master's liveness
  // beat for the shadows' election timers. Idempotent: re-applying the same
  // state is a no-op.
  kCoordShadowSync = 0x76,  // u64 epoch | u32 rank | blob state
                            //                       -> u64 acked_epoch
};

/// Events a recovery-side client reports to the coordinator (kCoordReport).
enum class CoordEvent : uint8_t {
  kDirtyListProcessed = 0,
  kWorkingSetTransferTerminated = 1,
  kDirtyListUnavailable = 2,
};

/// True iff `v` names a defined CoordEvent.
inline bool IsKnownCoordEvent(uint8_t v) { return v <= 2; }

// ---- Server pushes ---------------------------------------------------------
//
// Tags >= kMinPushTag are reserved for unsolicited server->client frames.
// They are disjoint from the status-code space (Code values are small), so a
// client reader can route them out of band without disturbing the
// FIFO-per-connection response matching rule (§10.6): a push frame is not a
// response and does not consume a pending request slot.

inline constexpr uint8_t kMinPushTag = 0xF0;

/// Configuration push: body = blob serialized_configuration
/// (Configuration::Serialize). Sent to connections subscribed via
/// kCoordConfigWatch whenever the coordinator publishes.
inline constexpr uint8_t kPushConfigTag = 0xF0;

/// True iff `tag` is an unsolicited push frame, not a response.
inline bool IsPushTag(uint8_t tag) { return tag >= kMinPushTag; }

/// True iff `op` is a defined opcode (decode-side validation).
bool IsKnownOp(uint8_t op);

/// True iff re-sending `op` after an ambiguous failure (connection dropped
/// with the response unread — the server may or may not have executed it)
/// cannot change the outcome. These are the only ops a client-side retry
/// layer may resend automatically (docs/PROTOCOL.md §11): pure reads (kGet,
/// kDirtyListGet, kWorkingSetScan, kConfigIdGet, kPing, kInstanceList, kStats,
/// kCoordConfigGet, kCoordConfigWatch, kCoordDirtyQuery), kConfigIdBump
/// (a max-merge into the instance's observed configuration id), and the
/// coordinator control ops whose state is level- rather than edge-triggered:
/// kCoordRegister (re-registering re-installs the same endpoint),
/// kCoordHeartbeat (a duplicate beat only refreshes a deadline),
/// kCoordShadowSync (re-applying a full-state sync is a no-op), and the
/// lease ops kLeaseGrant/kLeaseRevoke (the coordinator serializes publishes,
/// so a duplicate re-applies the same lease state; latest-config ids are
/// max-merged). kCoordReport stays fail-fast: the coordinator's recovery
/// transitions are mode-guarded, but a duplicated report after the mode
/// advanced would be indistinguishable from a stale straggler.
/// Everything that touches data-plane leases, versions, or dirty lists stays
/// fail-fast — a duplicated kIqSet/kDar/kAppend could double-apply or
/// resurrect a lease the protocol already voided. The bulk write ops
/// (kMultiSet/kMultiDelete) inherit the strictest member of their batch:
/// a replayed batch re-executes N writes, any one of which can resurrect a
/// concurrently deleted value, so the whole frame fails fast.
bool IsIdempotentOp(Op op);

// ---- Primitive writers (append to `out`) ----------------------------------

void PutU8(std::string& out, uint8_t v);
void PutU16(std::string& out, uint16_t v);
void PutU32(std::string& out, uint32_t v);
void PutU64(std::string& out, uint64_t v);
/// key: u16 length prefix. The caller must have checked kMaxKeyLen.
void PutKey(std::string& out, std::string_view key);
/// blob: u32 length prefix.
void PutBlob(std::string& out, std::string_view bytes);
void PutValue(std::string& out, const CacheValue& value);
void PutContext(std::string& out, const OpContext& ctx);

// ---- Primitive reader ------------------------------------------------------

/// Cursor over a decoded frame body. Every accessor returns false (and
/// consumes nothing) when fewer bytes remain than requested; once the body
/// is parsed, callers check Done() to reject trailing garbage.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetKey(std::string_view* key);
  bool GetBlob(std::string_view* bytes);
  bool GetValue(CacheValue* value);
  bool GetContext(OpContext* ctx);

  [[nodiscard]] size_t remaining() const { return data_.size(); }
  [[nodiscard]] bool Done() const { return data_.empty(); }

 private:
  bool GetRaw(void* out, size_t n);
  std::string_view data_;
};

// ---- Frames ----------------------------------------------------------------

/// Appends `u32 len | u8 tag | body` to `out`.
void AppendFrame(std::string& out, uint8_t tag, std::string_view body);

inline void AppendRequest(std::string& out, Op op, std::string_view body) {
  AppendFrame(out, static_cast<uint8_t>(op), body);
}
inline void AppendResponse(std::string& out, Code code,
                           std::string_view body) {
  AppendFrame(out, static_cast<uint8_t>(code), body);
}

enum class DecodeResult : uint8_t {
  /// A complete frame was decoded; *consumed bytes were used.
  kFrame,
  /// The buffer holds a prefix of a frame; read more and retry.
  kNeedMore,
  /// The peer is speaking garbage (oversized or undersized frame); the
  /// connection must be closed.
  kMalformed,
};

/// Decodes one frame from the front of `buf`. On kFrame, `*tag` and `*body`
/// alias `buf` (valid until the buffer is mutated) and `*consumed` is the
/// total frame size in bytes.
DecodeResult DecodeFrame(std::string_view buf, size_t* consumed, uint8_t* tag,
                         std::string_view* body);

/// Status-code <-> wire tag mapping. Unknown tags map to kInternal so a
/// newer peer cannot make an older client misbehave.
Code CodeFromWire(uint8_t tag);

}  // namespace wire
}  // namespace gemini
