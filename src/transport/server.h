// TransportServer: the geminid event loop.
//
// Hosts an InstanceRegistry — one or many CacheInstances — behind the wire
// protocol (src/transport/wire.h, docs/PROTOCOL.md §10). Single-threaded,
// non-blocking: an epoll loop on Linux (level-triggered), a poll(2) loop
// everywhere else — the fallback is also runtime-selectable so tests
// exercise both paths on any platform.
//
// Connection model: accept → mandatory HELLO (version exchange; a v2 HELLO
// names the target instance, a v1 HELLO gets the registry's default) →
// pipelined requests against the bound instance: every complete frame in
// the read buffer is processed in arrival order and its response appended
// to the write buffer in that same order, which is the FIFO-per-connection
// guarantee (docs/PROTOCOL.md §10.6) pipelined clients match responses
// against. Selecting
// an instance the registry does not host fails the handshake cleanly: the
// server answers kWrongInstance, then closes. Each connection owns a read
// buffer (frames are reassembled across short reads) and a write buffer
// (responses that do not fit the socket buffer are flushed when the fd
// turns writable). A framing violation — oversized length prefix, unknown
// opcode, HELLO out of order — closes the connection; a merely unparsable
// body gets a kInvalidArgument response and the connection lives on.
//
// Shutdown is graceful: Stop() stops accepting, lets each connection drain
// its pending write buffer (bounded by drain_timeout), then closes
// everything and joins the loop thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/cache/cache_instance.h"
#include "src/common/status.h"
#include "src/transport/instance_registry.h"
#include "src/transport/wire.h"

namespace gemini {

class TransportServer {
 public:
  struct Options {
    /// Address to bind. Loopback by default: the protocol is unauthenticated
    /// (trusted-cluster), so exposing it wider is an explicit choice.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Force the portable poll(2) loop even where epoll is available.
    bool use_poll_fallback = false;
    /// Target file of the kSnapshot op for the single-instance constructor;
    /// the registry constructor takes per-instance paths via
    /// InstanceOptions instead. Empty rejects snapshot triggers.
    std::string snapshot_path;
    /// Honor a path carried in a kSnapshot request (off: the request path
    /// is ignored and the instance's configured path is used — remote peers
    /// cannot choose where the server writes).
    bool allow_remote_snapshot_paths = false;
    int listen_backlog = 128;
    /// How long Stop() waits for write buffers to drain.
    int drain_timeout_ms = 2000;
  };

  /// Multi-instance server. The registry must stay unchanged (and its
  /// instances alive) for the server's lifetime.
  TransportServer(InstanceRegistry registry, Options options);
  /// Single-instance sugar: a one-entry registry whose snapshot path is
  /// options.snapshot_path.
  TransportServer(CacheInstance* instance, Options options);
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Binds, listens, and starts the loop thread. kInvalidArgument on an
  /// empty registry, kInternal on socket errors (bind failure, exhausted
  /// fds).
  Status Start();

  /// Graceful shutdown; idempotent. Safe to call from any thread.
  void Stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (valid after Start() returned Ok).
  [[nodiscard]] uint16_t port() const { return port_; }

  [[nodiscard]] const InstanceRegistry& registry() const { return registry_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t frames_handled = 0;
    uint64_t protocol_errors = 0;
    struct PerInstance {
      uint64_t frames_handled = 0;
      uint64_t protocol_errors = 0;
    };
    /// Frames/errors attributed to the instance the connection was bound
    /// to; handshake traffic (HELLO itself, pre-HELLO violations) counts
    /// only in the totals above.
    std::map<InstanceId, PerInstance> per_instance;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Connection;
  class Poller;
  class PollPoller;
#if defined(__linux__)
  class EpollPoller;
#endif

  void Loop();
  void AcceptReady();
  /// Reads, decodes, and handles frames; returns false when the connection
  /// must be closed.
  bool ReadReady(Connection& conn);
  /// Flushes the write buffer; returns false on a dead socket.
  bool FlushWrites(Connection& conn);
  void CloseConnection(int fd);
  /// Dispatches one request frame, appending the response frame to the
  /// connection's write buffer. Returns false to drop the connection.
  bool HandleFrame(Connection& conn, uint8_t op, std::string_view body);
  /// Handles the mandatory first frame; binds the connection's instance.
  bool HandleHello(Connection& conn, wire::Reader& r);
  void CountProtocolError(const Connection& conn);

  InstanceRegistry registry_;
  Options options_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() wakes the loop
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread loop_thread_;

  // Loop-thread state (no lock needed there); stats_ is read cross-thread.
  std::unique_ptr<Poller> poller_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace gemini
