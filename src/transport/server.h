// TransportServer: the geminid event loops.
//
// Hosts an InstanceRegistry — one or many CacheInstances — behind the wire
// protocol (src/transport/wire.h, docs/PROTOCOL.md §10). The server runs
// `Options::num_loops` event-loop shards, each a non-blocking loop on its
// own thread: an epoll loop on Linux (level-triggered), a poll(2) loop
// everywhere else — the fallback is also runtime-selectable so tests
// exercise both paths on any platform. Shard 0 owns the listen socket and
// acts as the acceptor, assigning each accepted connection to a shard
// round-robin; a connection lives on exactly one shard for its whole
// lifetime, so only that shard's thread ever reads or writes it.
// num_loops = 1 (and the default on a single-core machine) reproduces the
// historical single-threaded behavior exactly.
//
// Connection model: accept → mandatory HELLO (version exchange; a v2 HELLO
// names the target instance, a v1 HELLO gets the registry's default) →
// pipelined requests against the bound instance: every complete frame in
// the read buffer is processed in arrival order and its response appended
// to the write buffer in that same order. Because a connection is pinned to
// one shard, this is the FIFO-per-connection guarantee (docs/PROTOCOL.md
// §10.6) pipelined clients match responses against — sharding does not
// weaken it, it only removes cross-connection serialization. Selecting
// an instance the registry does not host fails the handshake cleanly: the
// server answers kWrongInstance, then closes. Each connection owns a read
// buffer (frames are reassembled across short reads) and a write buffer
// (responses that do not fit the socket buffer are flushed when the fd
// turns writable). A framing violation — oversized length prefix, unknown
// opcode, HELLO out of order — closes the connection; a merely unparsable
// body gets a kInvalidArgument response and the connection lives on.
//
// Stats are lock-free on the hot path: each shard keeps its own atomic
// counters (plus flat per-instance arrays indexed by registry slot), and
// stats() aggregates across shards on read, so a kStats-style poller never
// contends with request handling.
//
// Shutdown is graceful: Stop() stops accepting, lets every shard drain its
// connections' pending write buffers (bounded by drain_timeout), then
// closes everything and joins the loop threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/status.h"
#include "src/transport/instance_registry.h"
#include "src/transport/wire.h"

namespace gemini {

/// Server-side hook for the coordinator control plane (wire ops
/// kCoordRegister..kCoordDirtyQuery, docs/PROTOCOL.md §12). TransportServer
/// stays ignorant of coordinator semantics: it routes every control-plane
/// frame to the attached ControlPlane and appends whatever reply comes back.
/// HandleControl runs on an event-loop shard thread — it may block briefly
/// (the coordinator's publish path issues RPCs to instances), but anything
/// long-running belongs on the implementation's own threads. A server
/// without a control plane answers these ops with kInvalidArgument.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;

  struct Reply {
    Status status = Status::Ok();
    /// Response body for an Ok status (error messages travel in `status`).
    std::string body;
    /// Subscribe this connection to configuration pushes: from now on every
    /// PushConfigToSubscribers() broadcast lands on it as a kPushConfigTag
    /// frame.
    bool subscribe = false;
  };
  virtual Reply HandleControl(wire::Op op, std::string_view body) = 0;

  /// Extra name/value pairs appended to this server's kStats response —
  /// the control plane's `cluster.*` counters (registrations, heartbeats,
  /// promotions, replication lag/bytes, ...), mirroring how an instance's
  /// extra_stats hook surfaces `persist.*`. Called from shard threads; must
  /// be thread-safe. Default: nothing.
  virtual std::vector<std::pair<std::string, uint64_t>> ExtraStats() {
    return {};
  }
};

class TransportServer {
 public:
  /// Event-loop I/O backend. kUring is a completion-mode io_uring loop
  /// (multishot accept, buffered multishot recv, one io_uring_enter
  /// submitting a whole pass's staged response writes); kEpoll/kPoll are the
  /// readiness loops. kAuto consults the GEMINI_IO_BACKEND environment
  /// variable, then picks the best supported backend (uring > epoll > poll).
  enum class IoBackend { kAuto, kUring, kEpoll, kPoll };

  struct Options {
    /// Address to bind. Loopback by default: the protocol is unauthenticated
    /// (trusted-cluster), so exposing it wider is an explicit choice.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Event-loop shards. 0 = one per hardware thread
    /// (std::thread::hardware_concurrency); clamped to [1, 64]. 1 preserves
    /// the single-threaded behavior of earlier versions.
    uint32_t num_loops = 0;
    /// Force the portable poll(2) loop even where epoll is available.
    /// Legacy switch; equivalent to io_backend = IoBackend::kPoll, which it
    /// overrides when set.
    bool use_poll_fallback = false;
    /// Which event-loop backend the shards run. An *explicitly* requested
    /// kUring fails Start() when the kernel lacks io_uring support; kAuto
    /// (optionally steered by GEMINI_IO_BACKEND={uring,epoll,poll}) falls
    /// back with a logged warning instead.
    IoBackend io_backend = IoBackend::kAuto;
    /// Target file of the kSnapshot op for the single-instance constructor;
    /// the registry constructor takes per-instance paths via
    /// InstanceOptions instead. Empty rejects snapshot triggers.
    std::string snapshot_path;
    /// Honor a path carried in a kSnapshot request (off: the request path
    /// is ignored and the instance's configured path is used — remote peers
    /// cannot choose where the server writes).
    bool allow_remote_snapshot_paths = false;
    int listen_backlog = 128;
    /// How long Stop() waits for write buffers to drain.
    int drain_timeout_ms = 2000;
    /// Slowloris guard: a connection that has not completed its HELLO, or
    /// sits on a partial request frame, for longer than this is reaped
    /// (counted in Stats::connections_reaped). Established connections that
    /// are merely idle between complete requests are never reaped — clients
    /// legitimately hold pipelined connections open for their lifetime.
    /// 0 disables reaping.
    int idle_timeout_ms = 30000;
    /// Accept-error burst guard: after this many *consecutive* accept(2)
    /// failures (fd exhaustion, accept storms — EAGAIN and EINTR do not
    /// count) the acceptor unsubscribes from the listen socket for
    /// accept_pause_ms instead of spinning, then resumes. Each failure
    /// counts in Stats::accept_errors.
    int accept_error_burst = 64;
    int accept_pause_ms = 100;
    /// Coordinator control plane served by this server (null = plain data
    /// server; control ops answer kInvalidArgument). Must outlive the
    /// server. With a control plane attached the registry may be empty — a
    /// coordinator-only server accepts HELLOs that target kAnyInstance,
    /// binds no instance, and answers data ops with kUnavailable.
    ControlPlane* control = nullptr;
  };

  /// Multi-instance server. The registry must stay unchanged (and its
  /// instances alive) for the server's lifetime.
  TransportServer(InstanceRegistry registry, Options options);
  /// Single-instance sugar: a one-entry registry whose snapshot path is
  /// options.snapshot_path.
  TransportServer(CacheInstance* instance, Options options);
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Binds, listens, and starts the loop threads. kInvalidArgument on an
  /// empty registry without a control plane, kInternal on socket errors
  /// (bind failure, exhausted fds).
  Status Start();

  /// Broadcasts a kPushConfigTag frame carrying `serialized_config`
  /// (Configuration::Serialize bytes) to every connection subscribed via
  /// kCoordConfigWatch. Safe from any thread while the server runs, but
  /// must not race Stop(): callers (the coordinator control plane) stop
  /// pushing before stopping the server. No-op when not running.
  void PushConfigToSubscribers(std::string_view serialized_config);

  /// Graceful shutdown; idempotent. Safe to call from any thread.
  void Stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (valid after Start() returned Ok).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Effective shard count after resolving num_loops = 0 (valid after
  /// Start() returned Ok).
  [[nodiscard]] size_t loop_count() const { return shards_.size(); }

  [[nodiscard]] const InstanceRegistry& registry() const { return registry_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t frames_handled = 0;
    uint64_t protocol_errors = 0;
    /// Connections closed by the idle/partial-frame reaper.
    uint64_t connections_reaped = 0;
    /// accept(2) failures other than EAGAIN/EINTR.
    uint64_t accept_errors = 0;
    /// Response-path batching efficiency: every flush gathers a connection's
    /// queued frames into one sendmsg/IORING_OP_SENDMSG iovec chain, so
    /// frames_flushed / flush_calls is the average pipeline depth the
    /// write path actually exploited.
    uint64_t sendmsg_calls = 0;
    uint64_t flush_calls = 0;
    uint64_t frames_flushed = 0;
    /// SQEs submitted in io_uring_enter batches (0 on readiness backends).
    uint64_t uring_sqe_batched = 0;
    /// Working-set scan service (kWorkingSetScan, docs/PROTOCOL.md §13):
    /// pages served, keys enumerated, and their summed charged bytes.
    /// Recovery workers drive these while streaming a fragment's hot set
    /// off this server; surfaced over kStats as recovery.scan_*.
    uint64_t ws_scan_pages = 0;
    uint64_t ws_scan_keys = 0;
    uint64_t ws_scan_bytes = 0;
    struct PerInstance {
      uint64_t frames_handled = 0;
      uint64_t protocol_errors = 0;
    };
    /// Frames/errors attributed to the instance the connection was bound
    /// to; handshake traffic (HELLO itself, pre-HELLO violations) counts
    /// only in the totals above.
    std::map<InstanceId, PerInstance> per_instance;
  };
  /// Aggregates the per-shard atomic counters; never blocks the data path.
  /// Counters are *cumulative across Stop()/Start() cycles*: Start() folds
  /// the previous run's totals into a baseline before dropping its shards,
  /// so a restarted server keeps counting where it left off (the wire
  /// kStats op and monitoring both see monotonic values). Do not call
  /// concurrently with Start()/Stop().
  [[nodiscard]] Stats stats() const;

  /// Whether this kernel supports the io_uring features the kUring backend
  /// needs (always false off Linux). Cheap enough to call per Start().
  static bool IoUringSupported();

  /// Name of the backend the shards actually run ("uring"/"epoll"/"poll");
  /// valid after Start() returned Ok.
  [[nodiscard]] const char* io_backend_name() const;

 private:
  struct Connection;
  struct Shard;
  class OutQueue;
  class Poller;
  class PollPoller;
#if defined(__linux__)
  class EpollPoller;
  class IoUringPoller;
#endif

  void Loop(Shard& shard);
  /// Shard 0 only: accepts and assigns connections round-robin.
  void AcceptReady(Shard& shard);
  /// Configures one freshly accepted socket and assigns it to a shard.
  void DispatchAccepted(Shard& shard, int fd);
  /// Accept-error accounting + burst guard (shared by both accept paths).
  void AcceptFailure(Shard& shard);
  /// Moves fds handed over by the acceptor onto this shard's poller.
  void AdoptInbox(Shard& shard, bool draining);
  /// Reads, decodes, and handles frames; returns false when the connection
  /// must be closed.
  bool ReadReady(Shard& shard, Connection& conn);
  /// Decodes and handles every complete frame in conn.in, then flushes.
  bool ProcessInput(Shard& shard, Connection& conn);
  /// Flushes the write queue; returns false on a dead socket. `final_flush`
  /// forces a direct synchronous write even under a completion-mode poller
  /// (answer-then-close paths where the fd dies before the next Wait()).
  bool FlushWrites(Shard& shard, Connection& conn, bool final_flush = false);
  void CloseConnection(Shard& shard, int fd);
  /// Dispatches one request frame, appending the response frame to the
  /// connection's write buffer. Returns false to drop the connection.
  bool HandleFrame(Shard& shard, Connection& conn, uint8_t op,
                   std::string_view body);
  /// Handles the mandatory first frame; binds the connection's instance.
  bool HandleHello(Shard& shard, Connection& conn, wire::Reader& r);
  void CountProtocolError(Shard& shard, const Connection& conn);
  /// Routes one control-plane op to options_.control and appends the reply.
  bool HandleControlOp(Connection& conn, wire::Op op, std::string_view body);
  /// Appends the kStats response for `conn`'s server + bound instance.
  void HandleStats(Connection& conn);
  /// Response-builder helpers (members because OutQueue is private).
  static void RespondStatus(OutQueue& out, const Status& s);
  static void RespondToken(OutQueue& out, LeaseToken token);
  static void RespondOk(OutQueue& out, std::string_view body);
  /// Delivers queued config-push frames to this shard's subscribers.
  void DeliverPushes(Shard& shard, std::vector<std::string> frames);

  InstanceRegistry registry_;
  Options options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  /// Backend the current run's shards use (resolved by Start()).
  IoBackend active_backend_ = IoBackend::kPoll;

  /// Ascending instance ids; position = registry slot (per-shard counter
  /// arrays are indexed by it).
  std::vector<InstanceId> slot_ids_;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Round-robin cursor for connection assignment (acceptor thread only).
  size_t next_shard_ = 0;
  std::atomic<uint64_t> connections_accepted_{0};
  /// Totals of completed runs; stats() adds the live shard counters on top
  /// (see stats() — counters survive Stop()/Start()).
  Stats baseline_;
};

}  // namespace gemini
