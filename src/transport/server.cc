#include "src/transport/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/cache/snapshot.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/transport/wire.h"

namespace gemini {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// ---- Connection -------------------------------------------------------------

struct TransportServer::Connection {
  explicit Connection(int fd_in)
      : fd(fd_in), last_activity(SystemClock::Global().Now()) {}
  int fd;
  /// Last time bytes arrived (monotonic us); the reaper compares it against
  /// idle_timeout_ms for connections stuck pre-HELLO or mid-frame.
  Timestamp last_activity;
  std::string in;   // unparsed request bytes
  std::string out;  // unflushed response bytes
  size_t out_offset = 0;
  bool hello_done = false;
  // Subscribed to configuration pushes via kCoordConfigWatch.
  bool config_subscriber = false;
  // Bound by HELLO; every data op on this connection hits this instance.
  // Stays null on a coordinator-only server (empty registry): data ops then
  // answer kUnavailable while control ops keep working.
  CacheInstance* instance = nullptr;
  InstanceId bound_id = kInvalidInstance;
  size_t instance_slot = InstanceRegistry::npos;
  const InstanceOptions* instance_options = nullptr;

  [[nodiscard]] bool has_pending_writes() const {
    return out_offset < out.size();
  }
};

// ---- Pollers ----------------------------------------------------------------

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class TransportServer::Poller {
 public:
  virtual ~Poller() = default;
  virtual bool Add(int fd) = 0;
  /// Toggles write-readiness interest (read interest is permanent).
  virtual void Update(int fd, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  /// Blocks up to timeout_ms; fills `out` with ready fds.
  virtual bool Wait(int timeout_ms, std::vector<PollerEvent>& out) = 0;
};

/// Portable fallback: poll(2) over a flat pollfd vector. O(n) per wait, which
/// is fine for the connection counts a single event-loop shard serves.
class TransportServer::PollPoller final : public TransportServer::Poller {
 public:
  bool Add(int fd) override {
    fds_.push_back({fd, POLLIN, 0});
    return true;
  }

  void Update(int fd, bool want_write) override {
    for (auto& p : fds_) {
      if (p.fd == fd) {
        p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
        return;
      }
    }
  }

  void Remove(int fd) override {
    for (auto it = fds_.begin(); it != fds_.end(); ++it) {
      if (it->fd == fd) {
        fds_.erase(it);
        return;
      }
    }
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR;
    for (const auto& p : fds_) {
      if (p.revents == 0) continue;
      PollerEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return true;
  }

 private:
  std::vector<struct pollfd> fds_;
};

#if defined(__linux__)
class TransportServer::EpollPoller final : public TransportServer::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  [[nodiscard]] bool valid() const { return epfd_ >= 0; }

  bool Add(int fd) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void Update(int fd, bool want_write) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    struct epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR;
    for (int i = 0; i < n; ++i) {
      PollerEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
    return true;
  }

 private:
  int epfd_;
};
#endif  // __linux__

// ---- Shard ------------------------------------------------------------------

/// One event-loop shard: its own poller, connections, self-pipe, thread, and
/// atomic counters. Everything except the inbox (and the counters, read by
/// stats()) is touched only by the shard's own loop thread.
struct TransportServer::Shard {
  Shard(size_t index_in, size_t nslots)
      : index(index_in),
        per_instance_frames(nslots),
        per_instance_errors(nslots) {}

  const size_t index;
  int wake_fds[2] = {-1, -1};  // self-pipe: Stop()/the acceptor wake the loop
  std::unique_ptr<Poller> poller;
  std::unordered_map<int, std::unique_ptr<Connection>> connections;
  std::thread thread;

  // Accepted fds handed over by the acceptor (shard 0), adopted by this
  // shard's loop on its next wake-up.
  std::mutex inbox_mu;
  std::vector<int> inbox;
  // Config-push frames queued by PushConfigToSubscribers (same lock + wake
  // pipe as the inbox), delivered to subscribed connections on wake-up.
  std::vector<std::string> pushes;

  std::atomic<uint64_t> frames_handled{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> connections_reaped{0};
  std::atomic<uint64_t> accept_errors{0};
  // Acceptor-only state (shard 0's loop thread): the accept-error burst
  // guard's consecutive-failure count and suspension window.
  int consecutive_accept_errors = 0;
  bool accept_suspended = false;
  Timestamp accept_suspended_until = 0;
  // Indexed by registry slot (ascending instance-id order).
  std::vector<std::atomic<uint64_t>> per_instance_frames;
  std::vector<std::atomic<uint64_t>> per_instance_errors;
};

// ---- Lifecycle --------------------------------------------------------------

TransportServer::TransportServer(InstanceRegistry registry, Options options)
    : registry_(std::move(registry)), options_(std::move(options)) {}

TransportServer::TransportServer(CacheInstance* instance, Options options)
    : options_(std::move(options)) {
  InstanceOptions iopts;
  iopts.snapshot_path = options_.snapshot_path;
  (void)registry_.Add(instance, std::move(iopts));
}

TransportServer::~TransportServer() { Stop(); }

Status TransportServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(Code::kInvalidArgument, "server already running");
  }
  if (registry_.empty() && options_.control == nullptr) {
    return Status(Code::kInvalidArgument, "no instances registered");
  }
  stop_requested_.store(false, std::memory_order_release);
  // Fold the previous run's counters into the cumulative baseline before
  // dropping the shards that own them: stats() stays monotonic across
  // Stop()/Start() cycles instead of resetting with each restart.
  baseline_ = stats();
  shards_.clear();
  connections_accepted_.store(0, std::memory_order_relaxed);
  slot_ids_ = registry_.ids();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status(Code::kInternal, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInvalidArgument,
                  "bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal,
                  "bind(" + options_.bind_address + ":" +
                      std::to_string(options_.port) + ") failed: " +
                      std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal, "listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  uint32_t nloops = options_.num_loops;
  if (nloops == 0) {
    nloops = std::max(1u, std::thread::hardware_concurrency());
  }
  nloops = std::min(nloops, 64u);

  const auto teardown = [this]() {
    for (auto& shard : shards_) {
      if (shard->wake_fds[0] >= 0) ::close(shard->wake_fds[0]);
      if (shard->wake_fds[1] >= 0) ::close(shard->wake_fds[1]);
    }
    shards_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  };

  shards_.reserve(nloops);
  for (uint32_t i = 0; i < nloops; ++i) {
    auto shard = std::make_unique<Shard>(i, slot_ids_.size());
    if (::pipe(shard->wake_fds) != 0 ||
        !SetNonBlocking(shard->wake_fds[0]) ||
        !SetNonBlocking(shard->wake_fds[1])) {
      shards_.push_back(std::move(shard));  // so teardown closes its pipe
      teardown();
      return Status(Code::kInternal, "self-pipe failed");
    }
#if defined(__linux__)
    if (!options_.use_poll_fallback) {
      auto epoll = std::make_unique<EpollPoller>();
      if (epoll->valid()) shard->poller = std::move(epoll);
    }
#endif
    if (shard->poller == nullptr) {
      shard->poller = std::make_unique<PollPoller>();
    }
    shard->poller->Add(shard->wake_fds[0]);
    shards_.push_back(std::move(shard));
  }
  shards_[0]->poller->Add(listen_fd_);
  next_shard_ = 0;

  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { Loop(*s); });
  }
  std::string id_list;
  for (InstanceId id : slot_ids_) {
    if (!id_list.empty()) id_list += ",";
    id_list += std::to_string(id);
  }
  if (id_list.empty()) id_list = "none: coordinator-only";
  LOG_INFO << "geminid transport listening on " << options_.bind_address
           << ":" << port_ << " (instances " << id_list << ", "
           << shards_.size() << " event loop"
           << (shards_.size() == 1 ? "" : "s") << ")";
  return Status::Ok();
}

void TransportServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  // Wake every shard; a failed write means that loop is already draining.
  const char byte = 'w';
  for (auto& shard : shards_) {
    [[maybe_unused]] ssize_t n = ::write(shard->wake_fds[1], &byte, 1);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Every loop thread has exited: closing the listen socket and the
  // self-pipes here (not in Loop()) keeps the wake writes above from racing
  // the close. Any fd the acceptor handed over that its target shard never
  // adopted is closed here too.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& shard : shards_) {
    ::close(shard->wake_fds[0]);
    ::close(shard->wake_fds[1]);
    shard->wake_fds[0] = shard->wake_fds[1] = -1;
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    for (int fd : shard->inbox) ::close(fd);
    shard->inbox.clear();
  }
  running_.store(false, std::memory_order_release);
}

TransportServer::Stats TransportServer::stats() const {
  Stats s = baseline_;
  s.connections_accepted +=
      connections_accepted_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    s.frames_handled += shard->frames_handled.load(std::memory_order_relaxed);
    s.protocol_errors +=
        shard->protocol_errors.load(std::memory_order_relaxed);
    s.connections_reaped +=
        shard->connections_reaped.load(std::memory_order_relaxed);
    s.accept_errors += shard->accept_errors.load(std::memory_order_relaxed);
  }
  for (size_t slot = 0; slot < slot_ids_.size(); ++slot) {
    uint64_t frames = 0;
    uint64_t errors = 0;
    for (const auto& shard : shards_) {
      frames +=
          shard->per_instance_frames[slot].load(std::memory_order_relaxed);
      errors +=
          shard->per_instance_errors[slot].load(std::memory_order_relaxed);
    }
    if (frames != 0 || errors != 0) {
      Stats::PerInstance& pi = s.per_instance[slot_ids_[slot]];
      pi.frames_handled += frames;
      pi.protocol_errors += errors;
    }
  }
  return s;
}

void TransportServer::PushConfigToSubscribers(
    std::string_view serialized_config) {
  if (!running_.load(std::memory_order_acquire)) return;
  std::string body;
  wire::PutBlob(body, serialized_config);
  std::string frame;
  wire::AppendFrame(frame, wire::kPushConfigTag, body);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->inbox_mu);
      shard->pushes.push_back(frame);
    }
    const char byte = 'p';
    [[maybe_unused]] ssize_t n = ::write(shard->wake_fds[1], &byte, 1);
  }
}

// ---- Event loop -------------------------------------------------------------

void TransportServer::Loop(Shard& shard) {
  std::vector<PollerEvent> events;
  // Drain deadline once stop is requested (monotonic ms).
  int drain_budget_ms = options_.drain_timeout_ms;
  bool draining = false;

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      // Stop accepting; connections with queued responses get to drain.
      if (shard.index == 0) shard.poller->Remove(listen_fd_);
      AdoptInbox(shard, /*draining=*/true);
      std::vector<int> idle;
      for (auto& [fd, conn] : shard.connections) {
        if (!conn->has_pending_writes()) idle.push_back(fd);
      }
      for (int fd : idle) CloseConnection(shard, fd);
    }
    if (draining && (shard.connections.empty() || drain_budget_ms <= 0)) {
      break;
    }

    // Resume accepting after an accept-error burst pause (the guard in
    // AcceptReady unsubscribed the listen fd so a level-triggered poller
    // does not spin on it).
    if (shard.index == 0 && shard.accept_suspended && !draining &&
        SystemClock::Global().Now() >= shard.accept_suspended_until) {
      shard.poller->Add(listen_fd_);
      shard.accept_suspended = false;
    }

    events.clear();
    // With the reaper armed, wake often enough to enforce its deadline even
    // when no fd turns ready.
    int timeout = 500;
    if (options_.idle_timeout_ms > 0) {
      timeout = std::min(timeout, std::max(10, options_.idle_timeout_ms / 4));
    }
    if (shard.index == 0 && shard.accept_suspended) {
      timeout = std::min(timeout, std::max(10, options_.accept_pause_ms / 2));
    }
    if (draining) timeout = std::min(drain_budget_ms, 50);
    if (!shard.poller->Wait(timeout, events)) break;
    if (draining) drain_budget_ms -= timeout;

    // Idle/partial-frame reaper: close connections that are stuck before
    // HELLO or mid-frame (slowloris, dead peers holding fds). Established
    // connections idle *between* requests are left alone — pipelined
    // clients hold their connection for life.
    if (!draining && options_.idle_timeout_ms > 0) {
      const Timestamp now = SystemClock::Global().Now();
      const Duration limit = Millis(options_.idle_timeout_ms);
      std::vector<int> reap;
      for (auto& [fd, conn] : shard.connections) {
        if ((!conn->hello_done || !conn->in.empty()) &&
            now - conn->last_activity > limit) {
          reap.push_back(fd);
        }
      }
      for (int fd : reap) {
        shard.connections_reaped.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(shard, fd);
      }
    }

    for (const PollerEvent& ev : events) {
      if (ev.fd == shard.wake_fds[0]) {
        char buf[64];
        while (::read(shard.wake_fds[0], buf, sizeof(buf)) > 0) {
        }
        AdoptInbox(shard, draining);
        continue;
      }
      if (ev.fd == listen_fd_ && shard.index == 0) {
        if (!draining) AcceptReady(shard);
        continue;
      }
      auto it = shard.connections.find(ev.fd);
      if (it == shard.connections.end()) continue;
      Connection& conn = *it->second;
      bool alive = !ev.error;
      if (alive && ev.writable) alive = FlushWrites(shard, conn);
      if (alive && ev.readable && !draining) alive = ReadReady(shard, conn);
      if (alive && draining && !conn.has_pending_writes()) alive = false;
      if (!alive) CloseConnection(shard, ev.fd);
    }
  }

  AdoptInbox(shard, /*draining=*/true);
  for (auto it = shard.connections.begin(); it != shard.connections.end();) {
    int fd = it->first;
    ++it;
    CloseConnection(shard, fd);
  }
  // listen_fd_ and the self-pipes stay open until Stop() has joined every
  // loop thread; closing them here would race Stop()'s wake-up writes.
  shard.poller.reset();
}

void TransportServer::AcceptReady(Shard& shard) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      if (errno == EINTR) continue;
      // A real accept failure (EMFILE/ENFILE fd exhaustion, aborted
      // connections under SYN pressure). Count it; after a burst of
      // consecutive failures, unsubscribe from the listen fd for
      // accept_pause_ms — a level-triggered poller would otherwise report
      // it ready forever and turn the error into a busy spin.
      shard.accept_errors.fetch_add(1, std::memory_order_relaxed);
      if (options_.accept_error_burst > 0 &&
          ++shard.consecutive_accept_errors >= options_.accept_error_burst) {
        shard.poller->Remove(listen_fd_);
        shard.accept_suspended = true;
        shard.accept_suspended_until =
            SystemClock::Global().Now() + Millis(options_.accept_pause_ms);
        shard.consecutive_accept_errors = 0;
        return;
      }
      continue;
    }
    shard.consecutive_accept_errors = 0;
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    Shard& target = *shards_[next_shard_ % shards_.size()];
    ++next_shard_;
    if (&target == &shard) {
      shard.poller->Add(fd);
      shard.connections.emplace(fd, std::make_unique<Connection>(fd));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(target.inbox_mu);
      target.inbox.push_back(fd);
    }
    const char byte = 'c';
    [[maybe_unused]] ssize_t n = ::write(target.wake_fds[1], &byte, 1);
  }
}

void TransportServer::AdoptInbox(Shard& shard, bool draining) {
  std::vector<int> handoff;
  std::vector<std::string> pushes;
  {
    std::lock_guard<std::mutex> lock(shard.inbox_mu);
    handoff.swap(shard.inbox);
    pushes.swap(shard.pushes);
  }
  for (int fd : handoff) {
    if (draining) {
      ::close(fd);
      continue;
    }
    shard.poller->Add(fd);
    shard.connections.emplace(fd, std::make_unique<Connection>(fd));
  }
  if (!draining && !pushes.empty()) DeliverPushes(shard, std::move(pushes));
}

void TransportServer::DeliverPushes(Shard& shard,
                                    std::vector<std::string> frames) {
  // Pushes land between request frames, never inside one: responses are
  // appended synchronously in HandleFrame, so at this point every buffered
  // response is complete and the FIFO matching rule is preserved.
  std::vector<int> dead;
  for (auto& [fd, conn] : shard.connections) {
    if (!conn->config_subscriber) continue;
    for (const std::string& frame : frames) conn->out.append(frame);
    if (!FlushWrites(shard, *conn)) dead.push_back(fd);
  }
  for (int fd : dead) CloseConnection(shard, fd);
}

bool TransportServer::ReadReady(Shard& shard, Connection& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      conn.last_activity = SystemClock::Global().Now();
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  size_t cursor = 0;
  for (;;) {
    size_t consumed = 0;
    uint8_t op = 0;
    std::string_view body;
    const std::string_view rest =
        std::string_view(conn.in).substr(cursor);
    const wire::DecodeResult r =
        wire::DecodeFrame(rest, &consumed, &op, &body);
    if (r == wire::DecodeResult::kNeedMore) break;
    if (r == wire::DecodeResult::kMalformed) {
      CountProtocolError(shard, conn);
      return false;
    }
    cursor += consumed;
    if (!HandleFrame(shard, conn, op, body)) {
      CountProtocolError(shard, conn);
      return false;
    }
  }
  conn.in.erase(0, cursor);
  return FlushWrites(shard, conn);
}

bool TransportServer::FlushWrites(Shard& shard, Connection& conn) {
  while (conn.has_pending_writes()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      shard.poller->Update(conn.fd, /*want_write=*/true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_offset = 0;
  shard.poller->Update(conn.fd, /*want_write=*/false);
  return true;
}

void TransportServer::CloseConnection(Shard& shard, int fd) {
  shard.poller->Remove(fd);
  ::close(fd);
  shard.connections.erase(fd);
}

// ---- Request dispatch -------------------------------------------------------

namespace {

/// Appends a response frame for a plain Status outcome.
void RespondStatus(std::string& out, const Status& s) {
  std::string body;
  if (!s.ok() && !s.message().empty()) wire::PutBlob(body, s.message());
  wire::AppendResponse(out, s.code(), body);
}

/// Appends a kOk response with a lease-token body.
void RespondToken(std::string& out, LeaseToken token) {
  std::string body;
  wire::PutU64(body, token);
  wire::AppendResponse(out, Code::kOk, body);
}

}  // namespace

void TransportServer::CountProtocolError(Shard& shard,
                                         const Connection& conn) {
  shard.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  if (conn.instance_slot != InstanceRegistry::npos) {
    shard.per_instance_errors[conn.instance_slot].fetch_add(
        1, std::memory_order_relaxed);
  }
}

bool TransportServer::HandleHello(Shard& shard, Connection& conn,
                                  wire::Reader& r) {
  uint32_t version = 0;
  if (!r.GetU32(&version)) return false;
  if (version < wire::kMinProtocolVersion ||
      version > wire::kProtocolVersion) {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument,
                         "protocol version mismatch: server speaks " +
                             std::to_string(wire::kMinProtocolVersion) +
                             ".." +
                             std::to_string(wire::kProtocolVersion)));
    // Answer, then drop: FlushWrites runs before the close in ReadReady's
    // caller only on true returns, so flush here explicitly.
    FlushWrites(shard, conn);
    return false;
  }

  // v1 ends after the version; v2 appends the target instance id.
  InstanceId requested = wire::kAnyInstance;
  if (version >= 2) {
    uint32_t id = 0;
    if (!r.GetU32(&id)) return false;
    requested = id;
  }
  if (!r.Done()) return false;

  CacheInstance* instance = requested == wire::kAnyInstance
                                ? registry_.default_instance()
                                : registry_.Find(requested);
  if (instance == nullptr && requested == wire::kAnyInstance &&
      registry_.empty() && options_.control != nullptr) {
    // Coordinator-only server: the handshake succeeds unbound. Control ops
    // work; data ops answer kUnavailable.
    conn.hello_done = true;
    std::string resp;
    wire::PutU32(resp, version);
    wire::PutU32(resp, wire::kAnyInstance);
    wire::AppendResponse(conn.out, Code::kOk, resp);
    return true;
  }
  if (instance == nullptr) {
    // Fail the handshake cleanly: tell the client which id was refused,
    // then close — a client configured for a fragment group this server
    // does not host must not silently talk to the wrong instance.
    RespondStatus(conn.out,
                  Status(Code::kWrongInstance,
                         "instance " + std::to_string(requested) +
                             " is not hosted by this server"));
    FlushWrites(shard, conn);
    return false;
  }
  conn.hello_done = true;
  conn.instance = instance;
  conn.bound_id = instance->id();
  conn.instance_slot = registry_.IndexOf(conn.bound_id);
  conn.instance_options = registry_.FindOptions(conn.bound_id);
  std::string resp;
  wire::PutU32(resp, version);
  wire::PutU32(resp, conn.bound_id);
  wire::AppendResponse(conn.out, Code::kOk, resp);
  return true;
}

bool TransportServer::HandleFrame(Shard& shard, Connection& conn,
                                  uint8_t op_byte, std::string_view body) {
  shard.frames_handled.fetch_add(1, std::memory_order_relaxed);
  if (conn.instance_slot != InstanceRegistry::npos) {
    shard.per_instance_frames[conn.instance_slot].fetch_add(
        1, std::memory_order_relaxed);
  }
  if (!wire::IsKnownOp(op_byte)) return false;
  const wire::Op op = static_cast<wire::Op>(op_byte);
  wire::Reader r(body);

  // The handshake must come first, and exactly once.
  if (!conn.hello_done) {
    if (op != wire::Op::kHello) return false;
    return HandleHello(shard, conn, r);
  }
  if (op == wire::Op::kHello) return false;
  CacheInstance* const instance = conn.instance;

  const auto malformed = [&conn]() -> bool {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument, "malformed request body"));
    return true;
  };

  // A coordinator-only server (empty registry) binds no instance: session,
  // stats, and control-plane ops still work; everything else is answered
  // kUnavailable rather than dereferencing a null instance.
  if (instance == nullptr) {
    const bool instanceless =
        op == wire::Op::kPing || op == wire::Op::kInstanceList ||
        op == wire::Op::kStats ||
        (op >= wire::Op::kCoordRegister && op <= wire::Op::kCoordDirtyQuery);
    if (!instanceless) {
      RespondStatus(conn.out,
                    Status(Code::kUnavailable,
                           "no instance bound (coordinator-only server)"));
      return true;
    }
  }

  switch (op) {
    case wire::Op::kHello:
      return false;  // handled above

    case wire::Op::kPing: {
      if (!r.Done()) return malformed();
      wire::AppendResponse(conn.out, Code::kOk, {});
      return true;
    }

    case wire::Op::kInstanceList: {
      if (!r.Done()) return malformed();
      const std::vector<InstanceId> ids = registry_.ids();
      std::string resp;
      wire::PutU32(resp, static_cast<uint32_t>(ids.size()));
      for (InstanceId id : ids) wire::PutU32(resp, id);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kGet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto v = instance->Get(ctx, key);
      if (!v.ok()) {
        RespondStatus(conn.out, v.status());
        return true;
      }
      std::string resp;
      wire::PutValue(resp, *v);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kSet: {
      OpContext ctx;
      std::string_view key;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetValue(&value) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Set(ctx, key, std::move(value)));
      return true;
    }

    case wire::Op::kDelete: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Delete(ctx, key));
      return true;
    }

    case wire::Op::kCas: {
      OpContext ctx;
      std::string_view key;
      uint64_t expected = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&expected) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->Cas(ctx, key, expected, std::move(value)));
      return true;
    }

    case wire::Op::kAppend: {
      OpContext ctx;
      std::string_view key, data;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetBlob(&data) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Append(ctx, key, data));
      return true;
    }

    case wire::Op::kIqGet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto res = instance->IqGet(ctx, key);
      if (!res.ok()) {
        RespondStatus(conn.out, res.status());
        return true;
      }
      std::string resp;
      wire::PutU8(resp, res->value.has_value() ? 1 : 0);
      if (res->value.has_value()) wire::PutValue(resp, *res->value);
      wire::PutU64(resp, res->i_token);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kIqSet: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->IqSet(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kQareg: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto token = instance->Qareg(ctx, key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kDar: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Dar(ctx, key, token));
      return true;
    }

    case wire::Op::kRar: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->Rar(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kISet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto token = instance->ISet(ctx, key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kIDelete: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->IDelete(ctx, key, token));
      return true;
    }

    case wire::Op::kWriteBackInstall: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(
          conn.out,
          instance->WriteBackInstall(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kRedAcquire: {
      std::string_view key;
      if (!r.GetKey(&key) || !r.Done()) return malformed();
      auto token = instance->AcquireRed(key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kRedRelease: {
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetKey(&key) || !r.GetU64(&token) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->ReleaseRed(key, token));
      return true;
    }

    case wire::Op::kRedRenew: {
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetKey(&key) || !r.GetU64(&token) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->RenewRed(key, token));
      return true;
    }

    case wire::Op::kDirtyListGet: {
      uint64_t config_id = 0;
      uint32_t fragment = 0;
      if (!r.GetU64(&config_id) || !r.GetU32(&fragment) || !r.Done()) {
        return malformed();
      }
      const OpContext ctx{config_id, kInvalidFragment};
      auto v = instance->Get(ctx, DirtyListKey(fragment));
      if (!v.ok()) {
        RespondStatus(conn.out, v.status());
        return true;
      }
      std::string resp;
      wire::PutValue(resp, *v);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kDirtyListAppend: {
      uint64_t config_id = 0;
      uint32_t fragment = 0;
      std::string_view record;
      if (!r.GetU64(&config_id) || !r.GetU32(&fragment) ||
          !r.GetBlob(&record) || !r.Done()) {
        return malformed();
      }
      const OpContext ctx{config_id, kInvalidFragment};
      RespondStatus(conn.out,
                    instance->Append(ctx, DirtyListKey(fragment), record));
      return true;
    }

    case wire::Op::kConfigIdGet: {
      if (!r.Done()) return malformed();
      std::string resp;
      wire::PutU64(resp, instance->latest_config_id());
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kConfigIdBump: {
      uint64_t latest = 0;
      if (!r.GetU64(&latest) || !r.Done()) return malformed();
      instance->ObserveConfigId(latest);
      wire::AppendResponse(conn.out, Code::kOk, {});
      return true;
    }

    case wire::Op::kSnapshot: {
      std::string_view requested;
      if (!r.GetBlob(&requested) || !r.Done()) return malformed();
      std::string path = conn.instance_options != nullptr
                             ? conn.instance_options->snapshot_path
                             : std::string();
      if (!requested.empty() && options_.allow_remote_snapshot_paths) {
        path.assign(requested);
      }
      if (path.empty()) {
        RespondStatus(conn.out, Status(Code::kInvalidArgument,
                                       "no snapshot path configured"));
        return true;
      }
      RespondStatus(conn.out, Snapshot::WriteToFile(*instance, path));
      return true;
    }

    case wire::Op::kStats: {
      if (!r.Done()) return malformed();
      HandleStats(conn);
      return true;
    }

    case wire::Op::kLeaseGrant: {
      uint32_t fragment = 0;
      uint64_t min_valid = 0;
      uint64_t ttl_us = 0;
      uint64_t latest = 0;
      if (!r.GetU32(&fragment) || !r.GetU64(&min_valid) ||
          !r.GetU64(&ttl_us) || !r.GetU64(&latest) || !r.Done()) {
        return malformed();
      }
      // Lifetimes cross the wire as TTLs; the expiry is computed in this
      // instance's own clock domain (docs/PROTOCOL.md §12.3).
      instance->GrantFragmentLease(
          fragment, min_valid,
          instance->clock().Now() + static_cast<Duration>(ttl_us), latest);
      wire::AppendResponse(conn.out, Code::kOk, {});
      return true;
    }

    case wire::Op::kLeaseRevoke: {
      uint32_t fragment = 0;
      uint64_t latest = 0;
      if (!r.GetU32(&fragment) || !r.GetU64(&latest) || !r.Done()) {
        return malformed();
      }
      instance->RevokeFragmentLease(fragment, latest);
      wire::AppendResponse(conn.out, Code::kOk, {});
      return true;
    }

    case wire::Op::kCoordRegister:
    case wire::Op::kCoordHeartbeat:
    case wire::Op::kCoordConfigGet:
    case wire::Op::kCoordConfigWatch:
    case wire::Op::kCoordReport:
    case wire::Op::kCoordDirtyQuery:
      return HandleControlOp(conn, op, body);
  }
  return false;
}

bool TransportServer::HandleControlOp(Connection& conn, wire::Op op,
                                      std::string_view body) {
  if (options_.control == nullptr) {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument,
                         "this server is not a coordinator"));
    return true;
  }
  ControlPlane::Reply reply = options_.control->HandleControl(op, body);
  if (reply.subscribe) conn.config_subscriber = true;
  if (reply.status.ok()) {
    wire::AppendResponse(conn.out, Code::kOk, reply.body);
  } else {
    RespondStatus(conn.out, reply.status);
  }
  return true;
}

void TransportServer::HandleStats(Connection& conn) {
  std::vector<std::pair<std::string, uint64_t>> kv;
  const Stats server = stats();
  kv.emplace_back("server.connections_accepted", server.connections_accepted);
  kv.emplace_back("server.frames_handled", server.frames_handled);
  kv.emplace_back("server.protocol_errors", server.protocol_errors);
  kv.emplace_back("server.connections_reaped", server.connections_reaped);
  kv.emplace_back("server.accept_errors", server.accept_errors);
  if (conn.instance != nullptr) {
    const auto it = server.per_instance.find(conn.bound_id);
    if (it != server.per_instance.end()) {
      kv.emplace_back("instance.frames_handled", it->second.frames_handled);
      kv.emplace_back("instance.protocol_errors", it->second.protocol_errors);
    }
    const CacheInstance::Stats cache = conn.instance->stats();
    kv.emplace_back("cache.hits", cache.hits);
    kv.emplace_back("cache.misses", cache.misses);
    kv.emplace_back("cache.inserts", cache.inserts);
    kv.emplace_back("cache.deletes", cache.deletes);
    kv.emplace_back("cache.evictions", cache.evictions);
    kv.emplace_back("cache.config_discards", cache.config_discards);
    kv.emplace_back("cache.used_bytes", cache.used_bytes);
    kv.emplace_back("cache.entry_count", cache.entry_count);
    if (conn.instance_options != nullptr &&
        conn.instance_options->extra_stats != nullptr) {
      for (auto& [name, value] : conn.instance_options->extra_stats()) {
        kv.emplace_back(name, value);
      }
    }
  }
  std::string resp;
  wire::PutU32(resp, static_cast<uint32_t>(kv.size()));
  for (const auto& [name, value] : kv) {
    wire::PutBlob(resp, name);
    wire::PutU64(resp, value);
  }
  wire::AppendResponse(conn.out, Code::kOk, resp);
}

}  // namespace gemini
