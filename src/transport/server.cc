#include "src/transport/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/cache/snapshot.h"
#include "src/common/logging.h"
#include "src/transport/wire.h"

namespace gemini {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// ---- Connection -------------------------------------------------------------

struct TransportServer::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  int fd;
  std::string in;   // unparsed request bytes
  std::string out;  // unflushed response bytes
  size_t out_offset = 0;
  bool hello_done = false;
  // Bound by HELLO; every data op on this connection hits this instance.
  CacheInstance* instance = nullptr;
  InstanceId bound_id = kInvalidInstance;
  const InstanceOptions* instance_options = nullptr;

  [[nodiscard]] bool has_pending_writes() const {
    return out_offset < out.size();
  }
};

// ---- Pollers ----------------------------------------------------------------

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

class TransportServer::Poller {
 public:
  virtual ~Poller() = default;
  virtual bool Add(int fd) = 0;
  /// Toggles write-readiness interest (read interest is permanent).
  virtual void Update(int fd, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  /// Blocks up to timeout_ms; fills `out` with ready fds.
  virtual bool Wait(int timeout_ms, std::vector<PollerEvent>& out) = 0;
};

/// Portable fallback: poll(2) over a flat pollfd vector. O(n) per wait, which
/// is fine for the connection counts a single cache instance serves.
class TransportServer::PollPoller final : public TransportServer::Poller {
 public:
  bool Add(int fd) override {
    fds_.push_back({fd, POLLIN, 0});
    return true;
  }

  void Update(int fd, bool want_write) override {
    for (auto& p : fds_) {
      if (p.fd == fd) {
        p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
        return;
      }
    }
  }

  void Remove(int fd) override {
    for (auto it = fds_.begin(); it != fds_.end(); ++it) {
      if (it->fd == fd) {
        fds_.erase(it);
        return;
      }
    }
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR;
    for (const auto& p : fds_) {
      if (p.revents == 0) continue;
      PollerEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return true;
  }

 private:
  std::vector<struct pollfd> fds_;
};

#if defined(__linux__)
class TransportServer::EpollPoller final : public TransportServer::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  [[nodiscard]] bool valid() const { return epfd_ >= 0; }

  bool Add(int fd) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void Update(int fd, bool want_write) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    struct epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR;
    for (int i = 0; i < n; ++i) {
      PollerEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
    return true;
  }

 private:
  int epfd_;
};
#endif  // __linux__

// ---- Lifecycle --------------------------------------------------------------

TransportServer::TransportServer(InstanceRegistry registry, Options options)
    : registry_(std::move(registry)), options_(std::move(options)) {}

TransportServer::TransportServer(CacheInstance* instance, Options options)
    : options_(std::move(options)) {
  InstanceOptions iopts;
  iopts.snapshot_path = options_.snapshot_path;
  (void)registry_.Add(instance, std::move(iopts));
}

TransportServer::~TransportServer() { Stop(); }

Status TransportServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(Code::kInvalidArgument, "server already running");
  }
  if (registry_.empty()) {
    return Status(Code::kInvalidArgument, "no instances registered");
  }
  stop_requested_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status(Code::kInternal, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInvalidArgument,
                  "bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal,
                  "bind(" + options_.bind_address + ":" +
                      std::to_string(options_.port) + ") failed: " +
                      std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal, "listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_fds_) != 0 || !SetNonBlocking(wake_fds_[0]) ||
      !SetNonBlocking(wake_fds_[1])) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal, "self-pipe failed");
  }

#if defined(__linux__)
  if (!options_.use_poll_fallback) {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->valid()) poller_ = std::move(epoll);
  }
#endif
  if (poller_ == nullptr) poller_ = std::make_unique<PollPoller>();
  poller_->Add(listen_fd_);
  poller_->Add(wake_fds_[0]);

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { Loop(); });
  std::string id_list;
  for (InstanceId id : registry_.ids()) {
    if (!id_list.empty()) id_list += ",";
    id_list += std::to_string(id);
  }
  LOG_INFO << "geminid transport listening on " << options_.bind_address
           << ":" << port_ << " (instances " << id_list << ")";
  return Status::Ok();
}

void TransportServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  // Wake the loop; a failed write means it is already draining.
  const char byte = 'w';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop thread has exited: closing the listen socket and the self-pipe
  // here (not in Loop()) keeps the write above from racing the close.
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  running_.store(false, std::memory_order_release);
}

TransportServer::Stats TransportServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// ---- Event loop -------------------------------------------------------------

void TransportServer::Loop() {
  std::vector<PollerEvent> events;
  // Drain deadline once stop is requested (monotonic ms).
  int drain_budget_ms = options_.drain_timeout_ms;
  bool draining = false;

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      // Stop accepting; connections with queued responses get to drain.
      poller_->Remove(listen_fd_);
      std::vector<int> idle;
      for (auto& [fd, conn] : connections_) {
        if (!conn->has_pending_writes()) idle.push_back(fd);
      }
      for (int fd : idle) CloseConnection(fd);
    }
    if (draining && (connections_.empty() || drain_budget_ms <= 0)) break;

    events.clear();
    const int timeout = draining ? std::min(drain_budget_ms, 50) : 500;
    if (!poller_->Wait(timeout, events)) break;
    if (draining) drain_budget_ms -= timeout;

    for (const PollerEvent& ev : events) {
      if (ev.fd == wake_fds_[0]) {
        char buf[64];
        while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (ev.fd == listen_fd_) {
        if (!draining) AcceptReady();
        continue;
      }
      auto it = connections_.find(ev.fd);
      if (it == connections_.end()) continue;
      Connection& conn = *it->second;
      bool alive = !ev.error;
      if (alive && ev.writable) alive = FlushWrites(conn);
      if (alive && ev.readable && !draining) alive = ReadReady(conn);
      if (alive && draining && !conn.has_pending_writes()) alive = false;
      if (!alive) CloseConnection(ev.fd);
    }
  }

  for (auto it = connections_.begin(); it != connections_.end();) {
    int fd = it->first;
    ++it;
    CloseConnection(fd);
  }
  // listen_fd_ and the self-pipe stay open until Stop() has joined this
  // thread; closing them here would race Stop()'s wake-up write.
  poller_.reset();
}

void TransportServer::AcceptReady() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or transient error): back to the loop
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    poller_->Add(fd);
    connections_.emplace(fd, std::make_unique<Connection>(fd));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

bool TransportServer::ReadReady(Connection& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  size_t cursor = 0;
  for (;;) {
    size_t consumed = 0;
    uint8_t op = 0;
    std::string_view body;
    const std::string_view rest =
        std::string_view(conn.in).substr(cursor);
    const wire::DecodeResult r =
        wire::DecodeFrame(rest, &consumed, &op, &body);
    if (r == wire::DecodeResult::kNeedMore) break;
    if (r == wire::DecodeResult::kMalformed) {
      CountProtocolError(conn);
      return false;
    }
    cursor += consumed;
    if (!HandleFrame(conn, op, body)) {
      CountProtocolError(conn);
      return false;
    }
  }
  conn.in.erase(0, cursor);
  return FlushWrites(conn);
}

bool TransportServer::FlushWrites(Connection& conn) {
  while (conn.has_pending_writes()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      poller_->Update(conn.fd, /*want_write=*/true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  conn.out.clear();
  conn.out_offset = 0;
  poller_->Update(conn.fd, /*want_write=*/false);
  return true;
}

void TransportServer::CloseConnection(int fd) {
  poller_->Remove(fd);
  ::close(fd);
  connections_.erase(fd);
}

// ---- Request dispatch -------------------------------------------------------

namespace {

/// Appends a response frame for a plain Status outcome.
void RespondStatus(std::string& out, const Status& s) {
  std::string body;
  if (!s.ok() && !s.message().empty()) wire::PutBlob(body, s.message());
  wire::AppendResponse(out, s.code(), body);
}

/// Appends a kOk response with a lease-token body.
void RespondToken(std::string& out, LeaseToken token) {
  std::string body;
  wire::PutU64(body, token);
  wire::AppendResponse(out, Code::kOk, body);
}

}  // namespace

void TransportServer::CountProtocolError(const Connection& conn) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.protocol_errors;
  if (conn.bound_id != kInvalidInstance) {
    ++stats_.per_instance[conn.bound_id].protocol_errors;
  }
}

bool TransportServer::HandleHello(Connection& conn, wire::Reader& r) {
  uint32_t version = 0;
  if (!r.GetU32(&version)) return false;
  if (version < wire::kMinProtocolVersion ||
      version > wire::kProtocolVersion) {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument,
                         "protocol version mismatch: server speaks " +
                             std::to_string(wire::kMinProtocolVersion) +
                             ".." +
                             std::to_string(wire::kProtocolVersion)));
    // Answer, then drop: FlushWrites runs before the close in ReadReady's
    // caller only on true returns, so flush here explicitly.
    FlushWrites(conn);
    return false;
  }

  // v1 ends after the version; v2 appends the target instance id.
  InstanceId requested = wire::kAnyInstance;
  if (version >= 2) {
    uint32_t id = 0;
    if (!r.GetU32(&id)) return false;
    requested = id;
  }
  if (!r.Done()) return false;

  CacheInstance* instance = requested == wire::kAnyInstance
                                ? registry_.default_instance()
                                : registry_.Find(requested);
  if (instance == nullptr) {
    // Fail the handshake cleanly: tell the client which id was refused,
    // then close — a client configured for a fragment group this server
    // does not host must not silently talk to the wrong instance.
    RespondStatus(conn.out,
                  Status(Code::kWrongInstance,
                         "instance " + std::to_string(requested) +
                             " is not hosted by this server"));
    FlushWrites(conn);
    return false;
  }
  conn.hello_done = true;
  conn.instance = instance;
  conn.bound_id = instance->id();
  conn.instance_options = registry_.FindOptions(conn.bound_id);
  std::string resp;
  wire::PutU32(resp, version);
  wire::PutU32(resp, conn.bound_id);
  wire::AppendResponse(conn.out, Code::kOk, resp);
  return true;
}

bool TransportServer::HandleFrame(Connection& conn, uint8_t op_byte,
                                  std::string_view body) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.frames_handled;
    if (conn.bound_id != kInvalidInstance) {
      ++stats_.per_instance[conn.bound_id].frames_handled;
    }
  }
  if (!wire::IsKnownOp(op_byte)) return false;
  const wire::Op op = static_cast<wire::Op>(op_byte);
  wire::Reader r(body);

  // The handshake must come first, and exactly once.
  if (!conn.hello_done) {
    if (op != wire::Op::kHello) return false;
    return HandleHello(conn, r);
  }
  if (op == wire::Op::kHello) return false;
  CacheInstance* const instance = conn.instance;

  const auto malformed = [&conn]() -> bool {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument, "malformed request body"));
    return true;
  };

  switch (op) {
    case wire::Op::kHello:
      return false;  // handled above

    case wire::Op::kPing: {
      if (!r.Done()) return malformed();
      wire::AppendResponse(conn.out, Code::kOk, {});
      return true;
    }

    case wire::Op::kInstanceList: {
      if (!r.Done()) return malformed();
      const std::vector<InstanceId> ids = registry_.ids();
      std::string resp;
      wire::PutU32(resp, static_cast<uint32_t>(ids.size()));
      for (InstanceId id : ids) wire::PutU32(resp, id);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kGet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto v = instance->Get(ctx, key);
      if (!v.ok()) {
        RespondStatus(conn.out, v.status());
        return true;
      }
      std::string resp;
      wire::PutValue(resp, *v);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kSet: {
      OpContext ctx;
      std::string_view key;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetValue(&value) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Set(ctx, key, std::move(value)));
      return true;
    }

    case wire::Op::kDelete: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Delete(ctx, key));
      return true;
    }

    case wire::Op::kCas: {
      OpContext ctx;
      std::string_view key;
      uint64_t expected = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&expected) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->Cas(ctx, key, expected, std::move(value)));
      return true;
    }

    case wire::Op::kAppend: {
      OpContext ctx;
      std::string_view key, data;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetBlob(&data) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Append(ctx, key, data));
      return true;
    }

    case wire::Op::kIqGet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto res = instance->IqGet(ctx, key);
      if (!res.ok()) {
        RespondStatus(conn.out, res.status());
        return true;
      }
      std::string resp;
      wire::PutU8(resp, res->value.has_value() ? 1 : 0);
      if (res->value.has_value()) wire::PutValue(resp, *res->value);
      wire::PutU64(resp, res->i_token);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kIqSet: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->IqSet(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kQareg: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto token = instance->Qareg(ctx, key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kDar: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Dar(ctx, key, token));
      return true;
    }

    case wire::Op::kRar: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->Rar(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kISet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto token = instance->ISet(ctx, key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kIDelete: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->IDelete(ctx, key, token));
      return true;
    }

    case wire::Op::kWriteBackInstall: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(
          conn.out,
          instance->WriteBackInstall(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kRedAcquire: {
      std::string_view key;
      if (!r.GetKey(&key) || !r.Done()) return malformed();
      auto token = instance->AcquireRed(key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kRedRelease: {
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetKey(&key) || !r.GetU64(&token) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->ReleaseRed(key, token));
      return true;
    }

    case wire::Op::kRedRenew: {
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetKey(&key) || !r.GetU64(&token) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->RenewRed(key, token));
      return true;
    }

    case wire::Op::kDirtyListGet: {
      uint64_t config_id = 0;
      uint32_t fragment = 0;
      if (!r.GetU64(&config_id) || !r.GetU32(&fragment) || !r.Done()) {
        return malformed();
      }
      const OpContext ctx{config_id, kInvalidFragment};
      auto v = instance->Get(ctx, DirtyListKey(fragment));
      if (!v.ok()) {
        RespondStatus(conn.out, v.status());
        return true;
      }
      std::string resp;
      wire::PutValue(resp, *v);
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kDirtyListAppend: {
      uint64_t config_id = 0;
      uint32_t fragment = 0;
      std::string_view record;
      if (!r.GetU64(&config_id) || !r.GetU32(&fragment) ||
          !r.GetBlob(&record) || !r.Done()) {
        return malformed();
      }
      const OpContext ctx{config_id, kInvalidFragment};
      RespondStatus(conn.out,
                    instance->Append(ctx, DirtyListKey(fragment), record));
      return true;
    }

    case wire::Op::kConfigIdGet: {
      if (!r.Done()) return malformed();
      std::string resp;
      wire::PutU64(resp, instance->latest_config_id());
      wire::AppendResponse(conn.out, Code::kOk, resp);
      return true;
    }

    case wire::Op::kConfigIdBump: {
      uint64_t latest = 0;
      if (!r.GetU64(&latest) || !r.Done()) return malformed();
      instance->ObserveConfigId(latest);
      wire::AppendResponse(conn.out, Code::kOk, {});
      return true;
    }

    case wire::Op::kSnapshot: {
      std::string_view requested;
      if (!r.GetBlob(&requested) || !r.Done()) return malformed();
      std::string path = conn.instance_options != nullptr
                             ? conn.instance_options->snapshot_path
                             : std::string();
      if (!requested.empty() && options_.allow_remote_snapshot_paths) {
        path.assign(requested);
      }
      if (path.empty()) {
        RespondStatus(conn.out, Status(Code::kInvalidArgument,
                                       "no snapshot path configured"));
        return true;
      }
      RespondStatus(conn.out, Snapshot::WriteToFile(*instance, path));
      return true;
    }
  }
  return false;
}

}  // namespace gemini
