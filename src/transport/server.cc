#include "src/transport/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/io_uring.h>
#include <sys/epoll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/cache/snapshot.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/transport/wire.h"

namespace gemini {

namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// ---- OutQueue ---------------------------------------------------------------

/// One queued response frame, kept as up to three pieces so a bulk payload
/// (a GET's value bytes) is *moved* into place exactly once and gathered
/// straight from there by sendmsg — never re-copied into a contiguous write
/// buffer. Small frames use only `pre`.
struct OutFrame {
  std::string pre;      // u32 len | u8 tag | fields before the payload
  std::string payload;  // bulk bytes, moved from the cache result
  std::string post;     // fields after the payload
  [[nodiscard]] size_t size() const {
    return pre.size() + payload.size() + post.size();
  }
};

/// Per-connection write queue: whole response frames in FIFO order plus a
/// byte offset into the front frame. FlushWrites gathers the unsent pieces
/// into one iovec chain per sendmsg call, so N pipelined responses cost one
/// syscall and zero coalescing copies.
class TransportServer::OutQueue {
 public:
  [[nodiscard]] bool empty() const { return frames_.empty(); }
  [[nodiscard]] size_t bytes() const { return bytes_; }

  /// Single-piece frame: status-only and small structured responses.
  void PushFrame(uint8_t tag, std::string_view body) {
    OutFrame f;
    wire::AppendFrame(f.pre, tag, body);
    bytes_ += f.pre.size();
    frames_.push_back(std::move(f));
  }

  /// Three-piece frame. `head` holds the response fields before the bulk
  /// payload's u32 length prefix, `post` the fields after the payload
  /// bytes; the frame header and the payload length prefix are built here.
  void PushPayloadFrame(uint8_t tag, std::string_view head,
                        std::string payload, std::string post) {
    OutFrame f;
    wire::PutU32(f.pre, static_cast<uint32_t>(1 + head.size() + 4 +
                                              payload.size() + post.size()));
    wire::PutU8(f.pre, tag);
    f.pre.append(head);
    wire::PutU32(f.pre, static_cast<uint32_t>(payload.size()));
    f.payload = std::move(payload);
    f.post = std::move(post);
    bytes_ += f.size();
    frames_.push_back(std::move(f));
  }

  /// Already-encoded frame bytes (config pushes arrive fully framed).
  void PushRaw(std::string frame) {
    OutFrame f;
    f.pre = std::move(frame);
    bytes_ += f.pre.size();
    frames_.push_back(std::move(f));
  }

  /// Fills up to `max` iovecs with the unsent bytes; returns the count.
  size_t Gather(struct iovec* iov, size_t max) const {
    size_t n = 0;
    size_t skip = offset_;
    for (const OutFrame& f : frames_) {
      for (const std::string* piece : {&f.pre, &f.payload, &f.post}) {
        if (piece->empty()) continue;
        if (skip >= piece->size()) {
          skip -= piece->size();
          continue;
        }
        if (n == max) return n;
        iov[n].iov_base = const_cast<char*>(piece->data()) + skip;
        iov[n].iov_len = piece->size() - skip;
        skip = 0;
        ++n;
      }
      if (n == max) return n;
    }
    return n;
  }

  /// Advances past `sent` bytes, dropping completed frames; returns how
  /// many whole frames finished.
  size_t Consume(size_t sent) {
    bytes_ -= sent;
    offset_ += sent;
    size_t done = 0;
    while (!frames_.empty() && offset_ >= frames_.front().size()) {
      offset_ -= frames_.front().size();
      frames_.pop_front();
      ++done;
    }
    return done;
  }

 private:
  std::deque<OutFrame> frames_;
  size_t offset_ = 0;  // bytes of the front frame already sent
  size_t bytes_ = 0;   // total unsent bytes
};

// ---- Connection -------------------------------------------------------------

struct TransportServer::Connection {
  explicit Connection(int fd_in)
      : fd(fd_in), last_activity(SystemClock::Global().Now()) {}
  int fd;
  /// Last time bytes arrived (monotonic us); the reaper compares it against
  /// idle_timeout_ms for connections stuck pre-HELLO or mid-frame.
  Timestamp last_activity;
  std::string in;  // unparsed request bytes
  OutQueue out;    // unflushed response frames
  bool hello_done = false;
  // Subscribed to configuration pushes via kCoordConfigWatch.
  bool config_subscriber = false;
  // Bound by HELLO; every data op on this connection hits this instance.
  // Stays null on a coordinator-only server (empty registry): data ops then
  // answer kUnavailable while control ops keep working.
  CacheInstance* instance = nullptr;
  InstanceId bound_id = kInvalidInstance;
  size_t instance_slot = InstanceRegistry::npos;
  const InstanceOptions* instance_options = nullptr;

  [[nodiscard]] bool has_pending_writes() const { return !out.empty(); }
};

// ---- Pollers ----------------------------------------------------------------

struct PollerEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;
  // Completion-mode extras (IoUringPoller): a poller that completes I/O
  // instead of reporting readiness delivers the result with the event.
  bool accepted = false;  // `fd` is a freshly accepted socket; fd < 0 means
                          // one accept attempt failed (-fd is the errno)
  bool closed = false;    // peer EOF (a recv completed with 0 bytes)
  size_t sent = 0;        // bytes a staged send completed with
  std::string data;       // bytes a multishot recv delivered
};

class TransportServer::Poller {
 public:
  virtual ~Poller() = default;
  virtual bool Add(int fd) = 0;
  /// Toggles write-readiness interest (read interest is permanent).
  virtual void Update(int fd, bool want_write) = 0;
  virtual void Remove(int fd) = 0;
  /// Blocks up to timeout_ms; fills `out` with ready fds.
  virtual bool Wait(int timeout_ms, std::vector<PollerEvent>& out) = 0;

  // ---- Completion-mode hooks (overridden by IoUringPoller) ----------------
  /// True when this poller completes I/O itself: events carry accepted fds,
  /// received bytes, and sent-byte counts, and FlushWrites stages sends
  /// through StageSend instead of calling sendmsg directly.
  [[nodiscard]] virtual bool completion_mode() const { return false; }
  /// Registers the listen socket (completion mode arms a multishot accept).
  virtual bool AddAcceptor(int fd) { return Add(fd); }
  /// Registers a connection socket (completion mode arms a multishot recv).
  virtual bool AddConnection(int fd) { return Add(fd); }
  /// Queues one gathered send of `out`'s unsent bytes; the SQE is submitted
  /// by the next Wait()'s single io_uring_enter, so a whole event-loop
  /// pass's responses flush with one syscall. `out` must stay alive until
  /// the matching `sent` (or error) event is delivered.
  virtual void StageSend(int fd, OutQueue* out) {
    (void)fd;
    (void)out;
  }
};

/// Portable fallback: poll(2) over a flat pollfd vector. O(n) per wait, which
/// is fine for the connection counts a single event-loop shard serves.
class TransportServer::PollPoller final : public TransportServer::Poller {
 public:
  bool Add(int fd) override {
    fds_.push_back({fd, POLLIN, 0});
    return true;
  }

  void Update(int fd, bool want_write) override {
    for (auto& p : fds_) {
      if (p.fd == fd) {
        p.events = static_cast<short>(POLLIN | (want_write ? POLLOUT : 0));
        return;
      }
    }
  }

  void Remove(int fd) override {
    for (auto it = fds_.begin(); it != fds_.end(); ++it) {
      if (it->fd == fd) {
        fds_.erase(it);
        return;
      }
    }
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) return errno == EINTR;
    for (const auto& p : fds_) {
      if (p.revents == 0) continue;
      PollerEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return true;
  }

 private:
  std::vector<struct pollfd> fds_;
};

#if defined(__linux__)
class TransportServer::EpollPoller final : public TransportServer::Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epfd_ >= 0) ::close(epfd_);
  }

  [[nodiscard]] bool valid() const { return epfd_ >= 0; }

  bool Add(int fd) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void Update(int fd, bool want_write) override {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
  }

  void Remove(int fd) override {
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    struct epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) return errno == EINTR;
    for (int i = 0; i < n; ++i) {
      PollerEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
    return true;
  }

 private:
  int epfd_;
};

// ---- IoUringPoller ----------------------------------------------------------

namespace {

// Raw syscall wrappers: the protocol library carries no liburing dependency.
int IoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int IoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                 unsigned flags, const void* arg, size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

int IoUringRegister(int fd, unsigned opcode, const void* arg,
                    unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

}  // namespace

/// Completion-mode io_uring event loop (raw syscalls + mmap'd rings):
///  - multishot accept on the listen socket (one SQE accepts until error),
///  - buffered multishot recv per connection, reading into a provided
///    buffer pool registered with IORING_OP_PROVIDE_BUFFERS,
///  - staged response writes: FlushWrites queues a gathered IORING_OP_SENDMSG
///    per connection, and the next Wait()'s single io_uring_enter submits
///    the whole pass's SQE batch AND waits for completions — one syscall
///    flushes a shard's entire ready set.
/// Sends carry MSG_DONTWAIT so they complete inline during that enter
/// (-EAGAIN arms a oneshot POLLOUT instead of going async), which keeps
/// every kernel-side reference to connection memory scoped to the Wait call.
/// Multishot accept/recv downgrade themselves on -EINVAL (older kernels),
/// and user_data carries a per-fd generation so completions that race a
/// close/reuse of the same fd number are discarded, never misattributed.
class TransportServer::IoUringPoller final : public TransportServer::Poller {
 public:
  IoUringPoller(std::atomic<uint64_t>* sendmsg_calls,
                std::atomic<uint64_t>* sqe_batched)
      : sendmsg_calls_(sendmsg_calls), sqe_batched_(sqe_batched) {
    Init();
  }

  ~IoUringPoller() override {
    if (buf_base_ != nullptr) ::munmap(buf_base_, kBufCount * kBufSize);
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_sz_);
    if (cq_ring_ != nullptr && cq_ring_sz_ != 0) ::munmap(cq_ring_, cq_ring_sz_);
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_sz_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  [[nodiscard]] bool valid() const { return valid_; }

  /// One throwaway ring answers whether this kernel has everything the
  /// backend needs (the setup syscall, EXT_ARG timed waits, and the probed
  /// opcodes); multishot support is degraded at runtime, not probed.
  static bool Supported() {
    IoUringPoller probe(nullptr, nullptr);
    return probe.valid();
  }

  [[nodiscard]] bool completion_mode() const override { return true; }

  bool Add(int fd) override {
    // Non-connection fds (the shard's wake pipe): oneshot POLLIN, rearmed
    // by every Wait after it fires.
    pipes_[fd] = false;
    return true;
  }

  bool AddAcceptor(int fd) override {
    acceptor_fd_ = fd;
    accept_registered_ = true;
    accept_armed_ = false;  // armed by the next Wait
    return true;
  }

  bool AddConnection(int fd) override {
    FdState& st = conns_[fd];
    st = FdState{};
    st.gen = ++gen_counter_;
    return true;
  }

  void Update(int fd, bool want_write) override {
    // Readiness toggling has no meaning here: reads are always armed and
    // writes are staged explicitly through StageSend.
    (void)fd;
    (void)want_write;
  }

  void Remove(int fd) override {
    if (fd == acceptor_fd_ && accept_registered_) {
      accept_registered_ = false;
      if (accept_armed_) {
        CancelUd(MakeUd(kUdAccept, static_cast<uint32_t>(fd), 0));
        accept_armed_ = false;
      }
      return;
    }
    if (auto pit = pipes_.find(fd); pit != pipes_.end()) {
      if (pit->second) CancelUd(MakeUd(kUdPollIn, static_cast<uint32_t>(fd), 0));
      pipes_.erase(pit);
      return;
    }
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    FdState& st = it->second;
    if (st.recv_armed) {
      CancelUd(MakeUd(kUdRecv, static_cast<uint32_t>(fd), st.gen));
    }
    if (st.pollout_armed) {
      CancelUd(MakeUd(kUdPollOut, static_cast<uint32_t>(fd), st.gen));
    }
    // Sends complete inline during Wait's enter and staged ones are skipped
    // once the fd is gone, so nothing kernel-side still references the
    // connection's OutQueue after this returns.
    conns_.erase(it);
  }

  void StageSend(int fd, OutQueue* out) override {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;
    FdState& st = it->second;
    st.out = out;
    if (!st.send_staged && !st.send_inflight && !st.pollout_armed) {
      st.send_staged = true;
      staged_.push_back(fd);
    }
  }

  bool Wait(int timeout_ms, std::vector<PollerEvent>& out) override {
    // Rearm everything that fell out of multishot, recycle consumed recv
    // buffers, and queue this pass's staged sends — all as SQEs flushed by
    // the single enter below.
    ArmAccept();
    for (auto& [fd, armed] : pipes_) {
      if (!armed) {
        ArmPipe(fd);
        armed = true;
      }
    }
    for (auto& [fd, st] : conns_) ArmRecv(fd, st);
    std::vector<uint32_t> bufs;
    bufs.swap(free_bufs_);
    for (uint32_t bid : bufs) ProvideBuf(bid);
    std::vector<int> staged;
    staged.swap(staged_);
    for (int fd : staged) SubmitSendFor(fd);

    const unsigned to_submit = to_submit_;
    if (to_submit > 0 && sqe_batched_ != nullptr) {
      sqe_batched_->fetch_add(to_submit, std::memory_order_relaxed);
    }
    struct __kernel_timespec ts;
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    struct io_uring_getevents_arg arg;
    std::memset(&arg, 0, sizeof(arg));
    arg.ts = reinterpret_cast<uint64_t>(&ts);
    const int ret = IoUringEnter(ring_fd_, to_submit, 1,
                                 IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                                 &arg, sizeof(arg));
    if (ret >= 0) {
      to_submit_ -= static_cast<unsigned>(ret);
    } else if (errno != ETIME && errno != EINTR && errno != EBUSY &&
               errno != EAGAIN) {
      return false;
    }
    DrainCqes(out);
    return true;
  }

 private:
  static constexpr unsigned kEntries = 256;  // SQ slots (CQ gets 2x)
  static constexpr uint16_t kBufGroup = 0;
  static constexpr uint32_t kBufCount = 64;
  static constexpr size_t kBufSize = 32 * 1024;
  static constexpr size_t kSendIov = 32;

  enum UdKind : uint64_t {
    kUdPollIn = 1,   // wake-pipe readability
    kUdAccept = 2,
    kUdRecv = 3,
    kUdSend = 4,
    kUdPollOut = 5,  // write-readiness after a send hit EAGAIN
    kUdProvide = 6,
    kUdCancel = 7,
  };

  /// user_data = kind | 24-bit per-fd generation | fd. The generation makes
  /// completions from a closed fd's previous life detectably stale.
  static uint64_t MakeUd(UdKind kind, uint32_t fd, uint32_t gen) {
    return (static_cast<uint64_t>(kind) << 56) |
           (static_cast<uint64_t>(gen & 0xFFFFFFu) << 32) | fd;
  }
  static UdKind UdKindOf(uint64_t ud) {
    return static_cast<UdKind>(ud >> 56);
  }
  static uint32_t UdGen(uint64_t ud) {
    return static_cast<uint32_t>(ud >> 32) & 0xFFFFFFu;
  }
  static int UdFd(uint64_t ud) {
    return static_cast<int>(ud & 0xFFFFFFFFu);
  }

  struct FdState {
    uint32_t gen = 0;
    bool recv_armed = false;
    bool send_staged = false;    // queued for the next Wait's submit
    bool send_inflight = false;  // SENDMSG SQE submitted, CQE pending
    bool pollout_armed = false;
    OutQueue* out = nullptr;
    std::array<struct iovec, kSendIov> iov;
    struct msghdr msg;
  };

  void Init() {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = IoUringSetup(kEntries, &p);
    if (ring_fd_ < 0) return;
    // EXT_ARG gives the timed wait; NODROP makes the CQ lossless under
    // bursts. Both predate every kernel with the multishot ops.
    if ((p.features & IORING_FEAT_EXT_ARG) == 0 ||
        (p.features & IORING_FEAT_NODROP) == 0) {
      return;
    }

    alignas(struct io_uring_probe) char probe_buf[
        sizeof(struct io_uring_probe) + 256 * sizeof(struct io_uring_probe_op)];
    std::memset(probe_buf, 0, sizeof(probe_buf));
    auto* probe = reinterpret_cast<struct io_uring_probe*>(probe_buf);
    if (IoUringRegister(ring_fd_, IORING_REGISTER_PROBE, probe, 256) != 0) {
      return;
    }
    const auto supported = [probe](unsigned op) {
      return op <= probe->last_op &&
             (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
    };
    for (unsigned op :
         {static_cast<unsigned>(IORING_OP_POLL_ADD),
          static_cast<unsigned>(IORING_OP_SENDMSG),
          static_cast<unsigned>(IORING_OP_ACCEPT),
          static_cast<unsigned>(IORING_OP_ASYNC_CANCEL),
          static_cast<unsigned>(IORING_OP_RECV),
          static_cast<unsigned>(IORING_OP_PROVIDE_BUFFERS)}) {
      if (!supported(op)) return;
    }

    sq_entries_ = p.sq_entries;
    size_t sq_sz = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    size_t cq_sz = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_sz = cq_sz = std::max(sq_sz, cq_sz);
    }
    void* sq = ::mmap(nullptr, sq_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq == MAP_FAILED) return;
    sq_ring_ = static_cast<uint8_t*>(sq);
    sq_ring_sz_ = sq_sz;
    if ((p.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_ = sq_ring_;
      cq_ring_sz_ = 0;  // shared mapping; unmapped via sq_ring_
    } else {
      void* cq = ::mmap(nullptr, cq_sz, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq == MAP_FAILED) return;
      cq_ring_ = static_cast<uint8_t*>(cq);
      cq_ring_sz_ = cq_sz;
    }
    sqes_sz_ = p.sq_entries * sizeof(struct io_uring_sqe);
    void* sqes = ::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      sqes_sz_ = 0;
      return;
    }
    sqes_ = static_cast<struct io_uring_sqe*>(sqes);

    sq_head_ = reinterpret_cast<unsigned*>(sq_ring_ + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_ring_ + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq_ring_ + p.sq_off.ring_mask);
    auto* sq_array = reinterpret_cast<unsigned*>(sq_ring_ + p.sq_off.array);
    cq_head_ = reinterpret_cast<unsigned*>(cq_ring_ + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_ring_ + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq_ring_ + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq_ring_ + p.cq_off.cqes);
    // Identity index mapping: a submit is just a tail bump.
    for (unsigned i = 0; i <= sq_mask_; ++i) sq_array[i] = i;
    sq_tail_local_ = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);

    void* bufs = ::mmap(nullptr, kBufCount * kBufSize, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (bufs == MAP_FAILED) return;
    buf_base_ = static_cast<char*>(bufs);
    // Hand the whole recv pool to the kernel in one SQE, synchronously, so
    // a rejection (res < 0) fails construction instead of every recv.
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
    sqe->fd = static_cast<int>(kBufCount);
    sqe->addr = reinterpret_cast<uint64_t>(buf_base_);
    sqe->len = kBufSize;
    sqe->off = 0;
    sqe->buf_group = kBufGroup;
    sqe->user_data = MakeUd(kUdProvide, 0, 0);
    if (IoUringEnter(ring_fd_, to_submit_, 1, IORING_ENTER_GETEVENTS, nullptr,
                     0) < 0) {
      return;
    }
    to_submit_ = 0;
    bool provided = false;
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const struct io_uring_cqe& cqe = cqes_[head & cq_mask_];
      if (UdKindOf(cqe.user_data) == kUdProvide && cqe.res >= 0) {
        provided = true;
      }
      ++head;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    valid_ = provided;
  }

  struct io_uring_sqe* GetSqe() {
    if (sq_tail_local_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) >=
        sq_entries_) {
      // SQ full mid-pass: flush without waiting (the kernel consumes SQEs
      // synchronously during enter, so this frees the whole ring).
      if (to_submit_ > 0) {
        const int ret = IoUringEnter(ring_fd_, to_submit_, 0, 0, nullptr, 0);
        if (ret > 0) to_submit_ -= static_cast<unsigned>(ret);
      }
      if (sq_tail_local_ - __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE) >=
          sq_entries_) {
        return nullptr;
      }
    }
    struct io_uring_sqe* sqe = &sqes_[sq_tail_local_ & sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));
    ++sq_tail_local_;
    // The kernel only reads the SQ during enter (no SQPOLL), so publishing
    // the tail before the caller fills the SQE is safe single-threaded.
    __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
    ++to_submit_;
    return sqe;
  }

  void CancelUd(uint64_t target) {
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = target;
    sqe->user_data = MakeUd(kUdCancel, 0, 0);
  }

  void ArmAccept() {
    if (!accept_registered_ || accept_armed_) return;
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = acceptor_fd_;
    if (accept_multishot_) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->user_data = MakeUd(kUdAccept, static_cast<uint32_t>(acceptor_fd_), 0);
    accept_armed_ = true;
  }

  void ArmPipe(int fd) {
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    sqe->poll32_events = POLLIN;
    sqe->user_data = MakeUd(kUdPollIn, static_cast<uint32_t>(fd), 0);
  }

  void ArmRecv(int fd, FdState& st) {
    if (st.recv_armed) return;
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = fd;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = kBufGroup;
    if (recv_multishot_) sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->user_data = MakeUd(kUdRecv, static_cast<uint32_t>(fd), st.gen);
    st.recv_armed = true;
  }

  void ArmPollOut(int fd, FdState& st) {
    if (st.pollout_armed) return;
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    sqe->poll32_events = POLLOUT;
    sqe->user_data = MakeUd(kUdPollOut, static_cast<uint32_t>(fd), st.gen);
    st.pollout_armed = true;
  }

  void ProvideBuf(uint32_t bid) {
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      free_bufs_.push_back(bid);  // retry next Wait
      return;
    }
    sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
    sqe->fd = 1;  // one buffer
    sqe->addr = reinterpret_cast<uint64_t>(buf_base_ + bid * kBufSize);
    sqe->len = kBufSize;
    sqe->off = bid;
    sqe->buf_group = kBufGroup;
    sqe->user_data = MakeUd(kUdProvide, bid, 0);
  }

  void SubmitSendFor(int fd) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) return;  // closed since staging
    FdState& st = it->second;
    st.send_staged = false;
    if (st.out == nullptr || st.out->bytes() == 0 || st.send_inflight) return;
    struct io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      st.send_staged = true;
      staged_.push_back(fd);
      return;
    }
    std::memset(&st.msg, 0, sizeof(st.msg));
    st.msg.msg_iov = st.iov.data();
    st.msg.msg_iovlen = st.out->Gather(st.iov.data(), st.iov.size());
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(&st.msg);
    sqe->msg_flags = MSG_DONTWAIT | MSG_NOSIGNAL;
    sqe->user_data = MakeUd(kUdSend, static_cast<uint32_t>(fd), st.gen);
    st.send_inflight = true;
    if (sendmsg_calls_ != nullptr) {
      sendmsg_calls_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  void DrainCqes(std::vector<PollerEvent>& out) {
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
    for (;;) {
      const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) break;
      while (head != tail) {
        HandleCqe(cqes_[head & cq_mask_], out);
        ++head;
      }
      // Publish per batch so a NODROP overflow flush can make progress.
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    }
  }

  void HandleCqe(const struct io_uring_cqe& cqe,
                 std::vector<PollerEvent>& out) {
    const UdKind kind = UdKindOf(cqe.user_data);
    const int fd = UdFd(cqe.user_data);
    switch (kind) {
      case kUdProvide:
      case kUdCancel:
        return;

      case kUdPollIn: {
        if (auto it = pipes_.find(fd); it != pipes_.end()) {
          it->second = false;  // oneshot; rearmed next Wait
        }
        if (cqe.res == -ECANCELED) return;
        PollerEvent ev;
        ev.fd = fd;
        ev.readable = cqe.res >= 0;
        ev.error = cqe.res < 0;
        out.push_back(std::move(ev));
        return;
      }

      case kUdAccept: {
        if ((cqe.flags & IORING_CQE_F_MORE) == 0) accept_armed_ = false;
        if (cqe.res == -ECANCELED) return;
        if (cqe.res == -EINVAL && accept_multishot_) {
          // Kernel predates multishot accept: downgrade; the next Wait
          // rearms a oneshot accept.
          accept_multishot_ = false;
          return;
        }
        PollerEvent ev;
        ev.accepted = true;
        ev.fd = cqe.res;  // negative: -errno, for burst-guard accounting
        out.push_back(std::move(ev));
        return;
      }

      case kUdRecv: {
        auto it = conns_.find(fd);
        const bool live =
            it != conns_.end() && it->second.gen == UdGen(cqe.user_data);
        if (live && (cqe.flags & IORING_CQE_F_MORE) == 0) {
          it->second.recv_armed = false;  // rearmed next Wait
        }
        if ((cqe.flags & IORING_CQE_F_BUFFER) != 0) {
          const uint32_t bid = cqe.flags >> IORING_CQE_BUFFER_SHIFT;
          if (live && cqe.res > 0) {
            PollerEvent ev;
            ev.fd = fd;
            ev.data.assign(buf_base_ + bid * kBufSize,
                           static_cast<size_t>(cqe.res));
            out.push_back(std::move(ev));
          }
          free_bufs_.push_back(bid);  // recycle even for dead connections
        }
        if (!live || cqe.res > 0) return;
        if (cqe.res == 0) {
          PollerEvent ev;
          ev.fd = fd;
          ev.closed = true;
          out.push_back(std::move(ev));
          return;
        }
        if (cqe.res == -EINVAL && recv_multishot_) {
          // Kernel predates multishot recv: downgrade to oneshot rearm.
          recv_multishot_ = false;
          it->second.recv_armed = false;
          return;
        }
        // -ENOBUFS: the pool ran dry this pass; buffers recycle and the
        // recv rearms on the next Wait.
        if (cqe.res == -ENOBUFS || cqe.res == -ECANCELED) return;
        PollerEvent ev;
        ev.fd = fd;
        ev.error = true;
        out.push_back(std::move(ev));
        return;
      }

      case kUdSend: {
        auto it = conns_.find(fd);
        if (it == conns_.end() || it->second.gen != UdGen(cqe.user_data)) {
          return;
        }
        FdState& st = it->second;
        st.send_inflight = false;
        if (cqe.res > 0) {
          PollerEvent ev;
          ev.fd = fd;
          ev.sent = static_cast<size_t>(cqe.res);
          out.push_back(std::move(ev));
          return;
        }
        if (cqe.res == -EAGAIN) {
          ArmPollOut(fd, st);  // socket buffer full: wait for writability
          return;
        }
        if (cqe.res == -EINTR || cqe.res == 0) {
          StageSend(fd, st.out);
          return;
        }
        PollerEvent ev;
        ev.fd = fd;
        ev.error = true;
        out.push_back(std::move(ev));
        return;
      }

      case kUdPollOut: {
        auto it = conns_.find(fd);
        if (it == conns_.end() || it->second.gen != UdGen(cqe.user_data)) {
          return;
        }
        it->second.pollout_armed = false;
        if (cqe.res == -ECANCELED) return;
        PollerEvent ev;
        ev.fd = fd;
        ev.writable = true;
        ev.error = cqe.res < 0;
        out.push_back(std::move(ev));
        return;
      }
    }
  }

  std::atomic<uint64_t>* sendmsg_calls_;
  std::atomic<uint64_t>* sqe_batched_;
  bool valid_ = false;
  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  uint8_t* sq_ring_ = nullptr;
  size_t sq_ring_sz_ = 0;
  uint8_t* cq_ring_ = nullptr;
  size_t cq_ring_sz_ = 0;  // 0 when shared with the SQ mapping
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;
  unsigned sq_tail_local_ = 0;
  unsigned to_submit_ = 0;
  char* buf_base_ = nullptr;
  bool accept_multishot_ = true;
  bool recv_multishot_ = true;
  int acceptor_fd_ = -1;
  bool accept_registered_ = false;
  bool accept_armed_ = false;
  uint32_t gen_counter_ = 0;
  std::unordered_map<int, FdState> conns_;
  std::unordered_map<int, bool> pipes_;  // fd -> poll currently armed
  std::vector<int> staged_;
  std::vector<uint32_t> free_bufs_;
};
#endif  // __linux__

// ---- Shard ------------------------------------------------------------------

/// One event-loop shard: its own poller, connections, self-pipe, thread, and
/// atomic counters. Everything except the inbox (and the counters, read by
/// stats()) is touched only by the shard's own loop thread.
struct TransportServer::Shard {
  Shard(size_t index_in, size_t nslots)
      : index(index_in),
        per_instance_frames(nslots),
        per_instance_errors(nslots) {}

  const size_t index;
  int wake_fds[2] = {-1, -1};  // self-pipe: Stop()/the acceptor wake the loop
  std::unique_ptr<Poller> poller;
  std::unordered_map<int, std::unique_ptr<Connection>> connections;
  std::thread thread;

  // Accepted fds handed over by the acceptor (shard 0), adopted by this
  // shard's loop on its next wake-up.
  std::mutex inbox_mu;
  std::vector<int> inbox;
  // Config-push frames queued by PushConfigToSubscribers (same lock + wake
  // pipe as the inbox), delivered to subscribed connections on wake-up.
  std::vector<std::string> pushes;

  std::atomic<uint64_t> frames_handled{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> connections_reaped{0};
  std::atomic<uint64_t> accept_errors{0};
  // Write-path batching: syscalls issued (sendmsg or SENDMSG SQEs), flush
  // rounds, response frames fully flushed, SQEs submitted per enter batch.
  std::atomic<uint64_t> sendmsg_calls{0};
  std::atomic<uint64_t> flush_calls{0};
  std::atomic<uint64_t> frames_flushed{0};
  std::atomic<uint64_t> uring_sqe_batched{0};
  // Working-set scan service (recovery workers pulling hot pages off this
  // server's instances): pages served, keys and charged bytes enumerated.
  std::atomic<uint64_t> ws_scan_pages{0};
  std::atomic<uint64_t> ws_scan_keys{0};
  std::atomic<uint64_t> ws_scan_bytes{0};
  // Acceptor-only state (shard 0's loop thread): the accept-error burst
  // guard's consecutive-failure count and suspension window.
  int consecutive_accept_errors = 0;
  bool accept_suspended = false;
  Timestamp accept_suspended_until = 0;
  // Indexed by registry slot (ascending instance-id order).
  std::vector<std::atomic<uint64_t>> per_instance_frames;
  std::vector<std::atomic<uint64_t>> per_instance_errors;
};

// ---- Lifecycle --------------------------------------------------------------

TransportServer::TransportServer(InstanceRegistry registry, Options options)
    : registry_(std::move(registry)), options_(std::move(options)) {}

TransportServer::TransportServer(CacheInstance* instance, Options options)
    : options_(std::move(options)) {
  InstanceOptions iopts;
  iopts.snapshot_path = options_.snapshot_path;
  (void)registry_.Add(instance, std::move(iopts));
}

TransportServer::~TransportServer() { Stop(); }

Status TransportServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(Code::kInvalidArgument, "server already running");
  }
  if (registry_.empty() && options_.control == nullptr) {
    return Status(Code::kInvalidArgument, "no instances registered");
  }
  stop_requested_.store(false, std::memory_order_release);
  // Fold the previous run's counters into the cumulative baseline before
  // dropping the shards that own them: stats() stays monotonic across
  // Stop()/Start() cycles instead of resetting with each restart.
  baseline_ = stats();
  shards_.clear();
  connections_accepted_.store(0, std::memory_order_relaxed);
  slot_ids_ = registry_.ids();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status(Code::kInternal, "socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInvalidArgument,
                  "bad bind address " + options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal,
                  "bind(" + options_.bind_address + ":" +
                      std::to_string(options_.port) + ") failed: " +
                      std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0 ||
      !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Code::kInternal, "listen() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  uint32_t nloops = options_.num_loops;
  if (nloops == 0) {
    nloops = std::max(1u, std::thread::hardware_concurrency());
  }
  nloops = std::min(nloops, 64u);

  const auto teardown = [this]() {
    for (auto& shard : shards_) {
      if (shard->wake_fds[0] >= 0) ::close(shard->wake_fds[0]);
      if (shard->wake_fds[1] >= 0) ::close(shard->wake_fds[1]);
    }
    shards_.clear();
    ::close(listen_fd_);
    listen_fd_ = -1;
  };

  // Resolve the io backend once per Start(): the legacy poll flag wins,
  // then an explicit option, then GEMINI_IO_BACKEND, then best-supported.
  IoBackend backend = options_.io_backend;
  bool backend_explicit = backend != IoBackend::kAuto;
  if (options_.use_poll_fallback) {
    backend = IoBackend::kPoll;
    backend_explicit = true;
  }
  if (backend == IoBackend::kAuto) {
    if (const char* env = std::getenv("GEMINI_IO_BACKEND");
        env != nullptr && *env != '\0') {
      const std::string_view name(env);
      if (name == "uring") {
        backend = IoBackend::kUring;
      } else if (name == "epoll") {
        backend = IoBackend::kEpoll;
      } else if (name == "poll") {
        backend = IoBackend::kPoll;
      } else if (name != "auto") {
        LOG_WARN << "GEMINI_IO_BACKEND=" << name
                 << " is not one of {auto,uring,epoll,poll}; ignoring";
      }
    }
  }
#if defined(__linux__)
  if (backend == IoBackend::kAuto) {
    backend = IoUringSupported() ? IoBackend::kUring : IoBackend::kEpoll;
  } else if (backend == IoBackend::kUring && !IoUringSupported()) {
    if (backend_explicit) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status(Code::kInvalidArgument,
                    "io_backend=uring requested but this kernel lacks "
                    "io_uring support");
    }
    // Env-requested: fall back loudly, never silently.
    LOG_WARN << "GEMINI_IO_BACKEND=uring requested but this kernel lacks "
                "io_uring support; falling back to epoll";
    backend = IoBackend::kEpoll;
  }
#else
  if (backend != IoBackend::kPoll) backend = IoBackend::kPoll;
#endif
  active_backend_ = IoBackend::kPoll;

  shards_.reserve(nloops);
  for (uint32_t i = 0; i < nloops; ++i) {
    auto shard = std::make_unique<Shard>(i, slot_ids_.size());
    if (::pipe(shard->wake_fds) != 0 ||
        !SetNonBlocking(shard->wake_fds[0]) ||
        !SetNonBlocking(shard->wake_fds[1])) {
      shards_.push_back(std::move(shard));  // so teardown closes its pipe
      teardown();
      return Status(Code::kInternal, "self-pipe failed");
    }
#if defined(__linux__)
    if (backend == IoBackend::kUring) {
      auto uring = std::make_unique<IoUringPoller>(&shard->sendmsg_calls,
                                                   &shard->uring_sqe_batched);
      if (uring->valid()) {
        shard->poller = std::move(uring);
        active_backend_ = IoBackend::kUring;
      } else {
        // Supported() passed but this shard's ring failed (e.g. memlock
        // pressure): degrade this run to epoll rather than dying.
        LOG_WARN << "io_uring ring setup failed for shard " << i
                 << "; falling back to epoll";
        backend = IoBackend::kEpoll;
      }
    }
    if (shard->poller == nullptr && backend != IoBackend::kPoll) {
      auto epoll = std::make_unique<EpollPoller>();
      if (epoll->valid()) {
        shard->poller = std::move(epoll);
        active_backend_ = IoBackend::kEpoll;
      }
    }
#endif
    if (shard->poller == nullptr) {
      shard->poller = std::make_unique<PollPoller>();
    }
    shard->poller->Add(shard->wake_fds[0]);
    shards_.push_back(std::move(shard));
  }
  shards_[0]->poller->AddAcceptor(listen_fd_);
  next_shard_ = 0;

  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { Loop(*s); });
  }
  std::string id_list;
  for (InstanceId id : slot_ids_) {
    if (!id_list.empty()) id_list += ",";
    id_list += std::to_string(id);
  }
  if (id_list.empty()) id_list = "none: coordinator-only";
  LOG_INFO << "geminid transport listening on " << options_.bind_address
           << ":" << port_ << " (instances " << id_list << ", "
           << shards_.size() << " event loop"
           << (shards_.size() == 1 ? "" : "s") << ", io="
           << io_backend_name() << ")";
  return Status::Ok();
}

bool TransportServer::IoUringSupported() {
#if defined(__linux__)
  // The probe runs on a scratch thread: an io_uring's deferred teardown can
  // kick its creator's task context out of blocking syscalls (EINTR) a few
  // ms after close, so the throwaway ring must not bind to a long-lived
  // thread (like the caller of Start()).
  static const bool supported = [] {
    bool ok = false;
    std::thread([&ok] { ok = IoUringPoller::Supported(); }).join();
    return ok;
  }();
  return supported;
#else
  return false;
#endif
}

const char* TransportServer::io_backend_name() const {
  switch (active_backend_) {
    case IoBackend::kUring:
      return "uring";
    case IoBackend::kEpoll:
      return "epoll";
    default:
      return "poll";
  }
}

void TransportServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  // Wake every shard; a failed write means that loop is already draining.
  const char byte = 'w';
  for (auto& shard : shards_) {
    [[maybe_unused]] ssize_t n = ::write(shard->wake_fds[1], &byte, 1);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Every loop thread has exited: closing the listen socket and the
  // self-pipes here (not in Loop()) keeps the wake writes above from racing
  // the close. Any fd the acceptor handed over that its target shard never
  // adopted is closed here too.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (auto& shard : shards_) {
    ::close(shard->wake_fds[0]);
    ::close(shard->wake_fds[1]);
    shard->wake_fds[0] = shard->wake_fds[1] = -1;
    std::lock_guard<std::mutex> lock(shard->inbox_mu);
    for (int fd : shard->inbox) ::close(fd);
    shard->inbox.clear();
  }
  running_.store(false, std::memory_order_release);
}

TransportServer::Stats TransportServer::stats() const {
  Stats s = baseline_;
  s.connections_accepted +=
      connections_accepted_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    s.frames_handled += shard->frames_handled.load(std::memory_order_relaxed);
    s.protocol_errors +=
        shard->protocol_errors.load(std::memory_order_relaxed);
    s.connections_reaped +=
        shard->connections_reaped.load(std::memory_order_relaxed);
    s.accept_errors += shard->accept_errors.load(std::memory_order_relaxed);
    s.sendmsg_calls += shard->sendmsg_calls.load(std::memory_order_relaxed);
    s.flush_calls += shard->flush_calls.load(std::memory_order_relaxed);
    s.frames_flushed += shard->frames_flushed.load(std::memory_order_relaxed);
    s.uring_sqe_batched +=
        shard->uring_sqe_batched.load(std::memory_order_relaxed);
    s.ws_scan_pages += shard->ws_scan_pages.load(std::memory_order_relaxed);
    s.ws_scan_keys += shard->ws_scan_keys.load(std::memory_order_relaxed);
    s.ws_scan_bytes += shard->ws_scan_bytes.load(std::memory_order_relaxed);
  }
  for (size_t slot = 0; slot < slot_ids_.size(); ++slot) {
    uint64_t frames = 0;
    uint64_t errors = 0;
    for (const auto& shard : shards_) {
      frames +=
          shard->per_instance_frames[slot].load(std::memory_order_relaxed);
      errors +=
          shard->per_instance_errors[slot].load(std::memory_order_relaxed);
    }
    if (frames != 0 || errors != 0) {
      Stats::PerInstance& pi = s.per_instance[slot_ids_[slot]];
      pi.frames_handled += frames;
      pi.protocol_errors += errors;
    }
  }
  return s;
}

void TransportServer::PushConfigToSubscribers(
    std::string_view serialized_config) {
  if (!running_.load(std::memory_order_acquire)) return;
  std::string body;
  wire::PutBlob(body, serialized_config);
  std::string frame;
  wire::AppendFrame(frame, wire::kPushConfigTag, body);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->inbox_mu);
      shard->pushes.push_back(frame);
    }
    const char byte = 'p';
    [[maybe_unused]] ssize_t n = ::write(shard->wake_fds[1], &byte, 1);
  }
}

// ---- Event loop -------------------------------------------------------------

void TransportServer::Loop(Shard& shard) {
  std::vector<PollerEvent> events;
  // Drain deadline once stop is requested (monotonic ms).
  int drain_budget_ms = options_.drain_timeout_ms;
  bool draining = false;

  for (;;) {
    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      // Stop accepting; connections with queued responses get to drain.
      if (shard.index == 0) shard.poller->Remove(listen_fd_);
      AdoptInbox(shard, /*draining=*/true);
      std::vector<int> idle;
      for (auto& [fd, conn] : shard.connections) {
        if (!conn->has_pending_writes()) idle.push_back(fd);
      }
      for (int fd : idle) CloseConnection(shard, fd);
    }
    if (draining && (shard.connections.empty() || drain_budget_ms <= 0)) {
      break;
    }

    // Resume accepting after an accept-error burst pause (the guard in
    // AcceptFailure unsubscribed the listen fd so a level-triggered poller
    // does not spin on it, and a completion-mode one stops rearming accept).
    if (shard.index == 0 && shard.accept_suspended && !draining &&
        SystemClock::Global().Now() >= shard.accept_suspended_until) {
      shard.poller->AddAcceptor(listen_fd_);
      shard.accept_suspended = false;
    }

    events.clear();
    // With the reaper armed, wake often enough to enforce its deadline even
    // when no fd turns ready.
    int timeout = 500;
    if (options_.idle_timeout_ms > 0) {
      timeout = std::min(timeout, std::max(10, options_.idle_timeout_ms / 4));
    }
    if (shard.index == 0 && shard.accept_suspended) {
      timeout = std::min(timeout, std::max(10, options_.accept_pause_ms / 2));
    }
    if (draining) timeout = std::min(drain_budget_ms, 50);
    if (!shard.poller->Wait(timeout, events)) break;
    if (draining) drain_budget_ms -= timeout;

    // Idle/partial-frame reaper: close connections that are stuck before
    // HELLO or mid-frame (slowloris, dead peers holding fds). Established
    // connections idle *between* requests are left alone — pipelined
    // clients hold their connection for life.
    if (!draining && options_.idle_timeout_ms > 0) {
      const Timestamp now = SystemClock::Global().Now();
      const Duration limit = Millis(options_.idle_timeout_ms);
      std::vector<int> reap;
      for (auto& [fd, conn] : shard.connections) {
        if ((!conn->hello_done || !conn->in.empty()) &&
            now - conn->last_activity > limit) {
          reap.push_back(fd);
        }
      }
      for (int fd : reap) {
        shard.connections_reaped.fetch_add(1, std::memory_order_relaxed);
        CloseConnection(shard, fd);
      }
    }

    for (const PollerEvent& ev : events) {
      // Completion-mode accept results carry the new fd with the event.
      if (ev.accepted) {
        if (draining) {
          if (ev.fd >= 0) ::close(ev.fd);
        } else if (ev.fd < 0) {
          AcceptFailure(shard);
        } else {
          DispatchAccepted(shard, ev.fd);
        }
        continue;
      }
      if (ev.fd == shard.wake_fds[0]) {
        char buf[64];
        while (::read(shard.wake_fds[0], buf, sizeof(buf)) > 0) {
        }
        AdoptInbox(shard, draining);
        continue;
      }
      if (ev.fd == listen_fd_ && shard.index == 0) {
        if (!draining) AcceptReady(shard);
        continue;
      }
      auto it = shard.connections.find(ev.fd);
      if (it == shard.connections.end()) continue;
      Connection& conn = *it->second;
      bool alive = !ev.error;
      if (alive && ev.sent > 0) {
        // A staged gathered send completed: retire finished frames, and
        // restage if a short write (or newly queued frames) left bytes.
        shard.flush_calls.fetch_add(1, std::memory_order_relaxed);
        shard.frames_flushed.fetch_add(conn.out.Consume(ev.sent),
                                       std::memory_order_relaxed);
        if (conn.out.bytes() > 0) alive = FlushWrites(shard, conn);
      }
      if (alive && ev.writable) alive = FlushWrites(shard, conn);
      if (alive && !ev.data.empty()) {
        // Completion-mode recv delivered bytes with the event.
        conn.in.append(ev.data);
        conn.last_activity = SystemClock::Global().Now();
        if (!draining) alive = ProcessInput(shard, conn);
      }
      if (alive && ev.readable && !draining) alive = ReadReady(shard, conn);
      if (alive && ev.closed) alive = false;
      if (alive && draining && !conn.has_pending_writes()) alive = false;
      if (!alive) CloseConnection(shard, ev.fd);
    }
  }

  AdoptInbox(shard, /*draining=*/true);
  for (auto it = shard.connections.begin(); it != shard.connections.end();) {
    int fd = it->first;
    ++it;
    CloseConnection(shard, fd);
  }
  // listen_fd_ and the self-pipes stay open until Stop() has joined every
  // loop thread; closing them here would race Stop()'s wake-up writes.
  shard.poller.reset();
}

void TransportServer::AcceptReady(Shard& shard) {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      if (errno == EINTR) continue;
      AcceptFailure(shard);
      if (shard.accept_suspended) return;
      continue;
    }
    DispatchAccepted(shard, fd);
  }
}

void TransportServer::AcceptFailure(Shard& shard) {
  // A real accept failure (EMFILE/ENFILE fd exhaustion, aborted connections
  // under SYN pressure). Count it; after a burst of consecutive failures,
  // unsubscribe from the listen fd for accept_pause_ms — a level-triggered
  // poller would otherwise report it ready forever and turn the error into
  // a busy spin (and a completion-mode poller would rearm accept just as
  // hot).
  shard.accept_errors.fetch_add(1, std::memory_order_relaxed);
  if (options_.accept_error_burst > 0 &&
      ++shard.consecutive_accept_errors >= options_.accept_error_burst) {
    shard.poller->Remove(listen_fd_);
    shard.accept_suspended = true;
    shard.accept_suspended_until =
        SystemClock::Global().Now() + Millis(options_.accept_pause_ms);
    shard.consecutive_accept_errors = 0;
  }
}

void TransportServer::DispatchAccepted(Shard& shard, int fd) {
  shard.consecutive_accept_errors = 0;
  if (!SetNonBlocking(fd)) {
    ::close(fd);
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  connections_accepted_.fetch_add(1, std::memory_order_relaxed);

  Shard& target = *shards_[next_shard_ % shards_.size()];
  ++next_shard_;
  if (&target == &shard) {
    shard.poller->AddConnection(fd);
    shard.connections.emplace(fd, std::make_unique<Connection>(fd));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(target.inbox_mu);
    target.inbox.push_back(fd);
  }
  const char byte = 'c';
  [[maybe_unused]] ssize_t n = ::write(target.wake_fds[1], &byte, 1);
}

void TransportServer::AdoptInbox(Shard& shard, bool draining) {
  std::vector<int> handoff;
  std::vector<std::string> pushes;
  {
    std::lock_guard<std::mutex> lock(shard.inbox_mu);
    handoff.swap(shard.inbox);
    pushes.swap(shard.pushes);
  }
  for (int fd : handoff) {
    if (draining) {
      ::close(fd);
      continue;
    }
    shard.poller->AddConnection(fd);
    shard.connections.emplace(fd, std::make_unique<Connection>(fd));
  }
  if (!draining && !pushes.empty()) DeliverPushes(shard, std::move(pushes));
}

void TransportServer::DeliverPushes(Shard& shard,
                                    std::vector<std::string> frames) {
  // Pushes land between request frames, never inside one: responses are
  // appended synchronously in HandleFrame, so at this point every buffered
  // response is complete and the FIFO matching rule is preserved.
  std::vector<int> dead;
  for (auto& [fd, conn] : shard.connections) {
    if (!conn->config_subscriber) continue;
    for (const std::string& frame : frames) conn->out.PushRaw(frame);
    if (!FlushWrites(shard, *conn)) dead.push_back(fd);
  }
  for (int fd : dead) CloseConnection(shard, fd);
}

bool TransportServer::ReadReady(Shard& shard, Connection& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<size_t>(n));
      conn.last_activity = SystemClock::Global().Now();
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return ProcessInput(shard, conn);
}

bool TransportServer::ProcessInput(Shard& shard, Connection& conn) {
  size_t cursor = 0;
  for (;;) {
    size_t consumed = 0;
    uint8_t op = 0;
    std::string_view body;
    const std::string_view rest =
        std::string_view(conn.in).substr(cursor);
    const wire::DecodeResult r =
        wire::DecodeFrame(rest, &consumed, &op, &body);
    if (r == wire::DecodeResult::kNeedMore) break;
    if (r == wire::DecodeResult::kMalformed) {
      CountProtocolError(shard, conn);
      return false;
    }
    cursor += consumed;
    if (!HandleFrame(shard, conn, op, body)) {
      CountProtocolError(shard, conn);
      return false;
    }
  }
  conn.in.erase(0, cursor);
  return FlushWrites(shard, conn);
}

bool TransportServer::FlushWrites(Shard& shard, Connection& conn,
                                  bool final_flush) {
  // Completion mode: hand the queue to the poller; one IORING_OP_SENDMSG
  // per connection rides the next Wait()'s single io_uring_enter. A final
  // flush (answer-then-close, e.g. a refused handshake) cannot wait for the
  // next Wait() — the fd dies before it — so it falls through to the direct
  // sendmsg path below.
  if (shard.poller->completion_mode() && !final_flush) {
    if (conn.has_pending_writes()) shard.poller->StageSend(conn.fd, &conn.out);
    return true;
  }
  if (!conn.has_pending_writes()) {
    if (!final_flush) shard.poller->Update(conn.fd, /*want_write=*/false);
    return true;
  }
  shard.flush_calls.fetch_add(1, std::memory_order_relaxed);
  while (conn.has_pending_writes()) {
    struct iovec iov[32];
    struct msghdr msg = {};
    msg.msg_iov = iov;
    msg.msg_iovlen = conn.out.Gather(iov, 32);
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      shard.sendmsg_calls.fetch_add(1, std::memory_order_relaxed);
      shard.frames_flushed.fetch_add(
          conn.out.Consume(static_cast<size_t>(n)),
          std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Best effort on a final flush: the connection closes regardless.
      if (!final_flush) shard.poller->Update(conn.fd, /*want_write=*/true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (!final_flush) shard.poller->Update(conn.fd, /*want_write=*/false);
  return true;
}

void TransportServer::CloseConnection(Shard& shard, int fd) {
  shard.poller->Remove(fd);
  ::close(fd);
  shard.connections.erase(fd);
}

// ---- Request dispatch -------------------------------------------------------

/// Appends a response frame for a plain Status outcome.
void TransportServer::RespondStatus(OutQueue& out, const Status& s) {
  std::string body;
  if (!s.ok() && !s.message().empty()) wire::PutBlob(body, s.message());
  out.PushFrame(static_cast<uint8_t>(s.code()), body);
}

/// Appends a kOk response with a lease-token body.
void TransportServer::RespondToken(OutQueue& out, LeaseToken token) {
  std::string body;
  wire::PutU64(body, token);
  out.PushFrame(static_cast<uint8_t>(Code::kOk), body);
}

/// Appends a kOk response with a pre-built body.
void TransportServer::RespondOk(OutQueue& out, std::string_view body) {
  out.PushFrame(static_cast<uint8_t>(Code::kOk), body);
}

void TransportServer::CountProtocolError(Shard& shard,
                                         const Connection& conn) {
  shard.protocol_errors.fetch_add(1, std::memory_order_relaxed);
  if (conn.instance_slot != InstanceRegistry::npos) {
    shard.per_instance_errors[conn.instance_slot].fetch_add(
        1, std::memory_order_relaxed);
  }
}

bool TransportServer::HandleHello(Shard& shard, Connection& conn,
                                  wire::Reader& r) {
  uint32_t version = 0;
  if (!r.GetU32(&version)) return false;
  if (version < wire::kMinProtocolVersion ||
      version > wire::kProtocolVersion) {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument,
                         "protocol version mismatch: server speaks " +
                             std::to_string(wire::kMinProtocolVersion) +
                             ".." +
                             std::to_string(wire::kProtocolVersion)));
    // Answer, then drop: FlushWrites runs before the close in ReadReady's
    // caller only on true returns, so flush here explicitly (final: the fd
    // dies before a completion-mode poller would submit a staged send).
    FlushWrites(shard, conn, /*final_flush=*/true);
    return false;
  }

  // v1 ends after the version; v2 appends the target instance id.
  InstanceId requested = wire::kAnyInstance;
  if (version >= 2) {
    uint32_t id = 0;
    if (!r.GetU32(&id)) return false;
    requested = id;
  }
  if (!r.Done()) return false;

  CacheInstance* instance = requested == wire::kAnyInstance
                                ? registry_.default_instance()
                                : registry_.Find(requested);
  if (instance == nullptr && requested == wire::kAnyInstance &&
      registry_.empty() && options_.control != nullptr) {
    // Coordinator-only server: the handshake succeeds unbound. Control ops
    // work; data ops answer kUnavailable.
    conn.hello_done = true;
    std::string resp;
    wire::PutU32(resp, version);
    wire::PutU32(resp, wire::kAnyInstance);
    RespondOk(conn.out, resp);
    return true;
  }
  if (instance == nullptr) {
    // Fail the handshake cleanly: tell the client which id was refused,
    // then close — a client configured for a fragment group this server
    // does not host must not silently talk to the wrong instance.
    RespondStatus(conn.out,
                  Status(Code::kWrongInstance,
                         "instance " + std::to_string(requested) +
                             " is not hosted by this server"));
    FlushWrites(shard, conn, /*final_flush=*/true);
    return false;
  }
  conn.hello_done = true;
  conn.instance = instance;
  conn.bound_id = instance->id();
  conn.instance_slot = registry_.IndexOf(conn.bound_id);
  conn.instance_options = registry_.FindOptions(conn.bound_id);
  std::string resp;
  wire::PutU32(resp, version);
  wire::PutU32(resp, conn.bound_id);
  RespondOk(conn.out, resp);
  return true;
}

bool TransportServer::HandleFrame(Shard& shard, Connection& conn,
                                  uint8_t op_byte, std::string_view body) {
  shard.frames_handled.fetch_add(1, std::memory_order_relaxed);
  if (conn.instance_slot != InstanceRegistry::npos) {
    shard.per_instance_frames[conn.instance_slot].fetch_add(
        1, std::memory_order_relaxed);
  }
  if (!wire::IsKnownOp(op_byte)) return false;
  const wire::Op op = static_cast<wire::Op>(op_byte);
  wire::Reader r(body);

  // The handshake must come first, and exactly once.
  if (!conn.hello_done) {
    if (op != wire::Op::kHello) return false;
    return HandleHello(shard, conn, r);
  }
  if (op == wire::Op::kHello) return false;
  CacheInstance* const instance = conn.instance;

  const auto malformed = [&conn]() -> bool {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument, "malformed request body"));
    return true;
  };

  // A coordinator-only server (empty registry) binds no instance: session,
  // stats, and control-plane ops still work; everything else is answered
  // kUnavailable rather than dereferencing a null instance.
  if (instance == nullptr) {
    const bool instanceless =
        op == wire::Op::kPing || op == wire::Op::kInstanceList ||
        op == wire::Op::kStats ||
        (op >= wire::Op::kCoordRegister && op <= wire::Op::kCoordShadowSync);
    if (!instanceless) {
      RespondStatus(conn.out,
                    Status(Code::kUnavailable,
                           "no instance bound (coordinator-only server)"));
      return true;
    }
  }

  switch (op) {
    case wire::Op::kHello:
      return false;  // handled above

    case wire::Op::kPing: {
      if (!r.Done()) return malformed();
      RespondOk(conn.out, {});
      return true;
    }

    case wire::Op::kInstanceList: {
      if (!r.Done()) return malformed();
      const std::vector<InstanceId> ids = registry_.ids();
      std::string resp;
      wire::PutU32(resp, static_cast<uint32_t>(ids.size()));
      for (InstanceId id : ids) wire::PutU32(resp, id);
      RespondOk(conn.out, resp);
      return true;
    }

    case wire::Op::kGet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto v = instance->Get(ctx, key);
      if (!v.ok()) {
        RespondStatus(conn.out, v.status());
        return true;
      }
      // Zero-copy: the value payload rides the frame as its own iovec piece
      // (wire layout matches PutValue: blob | charged | version), so large
      // values are never memcpy'd into a contiguous response buffer.
      std::string post;
      wire::PutU32(post, v->charged_bytes);
      wire::PutU64(post, v->version);
      conn.out.PushPayloadFrame(static_cast<uint8_t>(Code::kOk), {},
                                std::move(v->data), std::move(post));
      return true;
    }

    case wire::Op::kSet: {
      OpContext ctx;
      std::string_view key;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetValue(&value) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Set(ctx, key, std::move(value)));
      return true;
    }

    case wire::Op::kDelete: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Delete(ctx, key));
      return true;
    }

    case wire::Op::kCas: {
      OpContext ctx;
      std::string_view key;
      uint64_t expected = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&expected) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->Cas(ctx, key, expected, std::move(value)));
      return true;
    }

    case wire::Op::kAppend: {
      OpContext ctx;
      std::string_view key, data;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetBlob(&data) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Append(ctx, key, data));
      return true;
    }

    case wire::Op::kMultiSet: {
      // Bulk ops parse the whole batch before touching the cache: a frame
      // that fails validation anywhere applies NOTHING and answers a single
      // kInvalidArgument, so a client never has to wonder how far a
      // malformed batch got.
      uint32_t count = 0;
      if (!r.GetU32(&count)) return malformed();
      // Each entry is >= 30 wire bytes (ctx 12 | key len 2 | value 16), so a
      // count the remaining body cannot hold is rejected before allocating.
      if (static_cast<uint64_t>(count) * 30 > r.remaining()) {
        return malformed();
      }
      struct Entry {
        OpContext ctx;
        std::string_view key;
        CacheValue value;
      };
      std::vector<Entry> entries(count);
      for (auto& e : entries) {
        if (!r.GetContext(&e.ctx) || !r.GetKey(&e.key) ||
            !r.GetValue(&e.value)) {
          return malformed();
        }
      }
      if (!r.Done()) return malformed();
      std::string resp;
      wire::PutU32(resp, count);
      for (auto& e : entries) {
        wire::PutU8(resp, static_cast<uint8_t>(
                              instance->Set(e.ctx, e.key, std::move(e.value))
                                  .code()));
      }
      RespondOk(conn.out, resp);
      return true;
    }

    case wire::Op::kMultiDelete: {
      uint32_t count = 0;
      if (!r.GetU32(&count)) return malformed();
      // Each entry is >= 14 wire bytes (ctx 12 | key len 2).
      if (static_cast<uint64_t>(count) * 14 > r.remaining()) {
        return malformed();
      }
      struct Entry {
        OpContext ctx;
        std::string_view key;
      };
      std::vector<Entry> entries(count);
      for (auto& e : entries) {
        if (!r.GetContext(&e.ctx) || !r.GetKey(&e.key)) return malformed();
      }
      if (!r.Done()) return malformed();
      std::string resp;
      wire::PutU32(resp, count);
      for (auto& e : entries) {
        wire::PutU8(resp,
                    static_cast<uint8_t>(instance->Delete(e.ctx, e.key).code()));
      }
      RespondOk(conn.out, resp);
      return true;
    }

    case wire::Op::kIqGet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto res = instance->IqGet(ctx, key);
      if (!res.ok()) {
        RespondStatus(conn.out, res.status());
        return true;
      }
      if (res->value.has_value()) {
        // Hit: zero-copy the value payload (head = hit marker, post = the
        // fields after the payload bytes — charged | version | i_token).
        std::string head;
        wire::PutU8(head, 1);
        std::string post;
        wire::PutU32(post, res->value->charged_bytes);
        wire::PutU64(post, res->value->version);
        wire::PutU64(post, res->i_token);
        conn.out.PushPayloadFrame(static_cast<uint8_t>(Code::kOk), head,
                                  std::move(res->value->data),
                                  std::move(post));
        return true;
      }
      std::string resp;
      wire::PutU8(resp, 0);
      wire::PutU64(resp, res->i_token);
      RespondOk(conn.out, resp);
      return true;
    }

    case wire::Op::kIqSet: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->IqSet(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kQareg: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto token = instance->Qareg(ctx, key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kDar: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->Dar(ctx, key, token));
      return true;
    }

    case wire::Op::kRar: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out,
                    instance->Rar(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kISet: {
      OpContext ctx;
      std::string_view key;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.Done()) {
        return malformed();
      }
      auto token = instance->ISet(ctx, key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kIDelete: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->IDelete(ctx, key, token));
      return true;
    }

    case wire::Op::kWriteBackInstall: {
      OpContext ctx;
      std::string_view key;
      uint64_t token = 0;
      CacheValue value;
      if (!r.GetContext(&ctx) || !r.GetKey(&key) || !r.GetU64(&token) ||
          !r.GetValue(&value) || !r.Done()) {
        return malformed();
      }
      RespondStatus(
          conn.out,
          instance->WriteBackInstall(ctx, key, std::move(value), token));
      return true;
    }

    case wire::Op::kRedAcquire: {
      std::string_view key;
      if (!r.GetKey(&key) || !r.Done()) return malformed();
      auto token = instance->AcquireRed(key);
      if (!token.ok()) {
        RespondStatus(conn.out, token.status());
      } else {
        RespondToken(conn.out, *token);
      }
      return true;
    }

    case wire::Op::kRedRelease: {
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetKey(&key) || !r.GetU64(&token) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->ReleaseRed(key, token));
      return true;
    }

    case wire::Op::kRedRenew: {
      std::string_view key;
      uint64_t token = 0;
      if (!r.GetKey(&key) || !r.GetU64(&token) || !r.Done()) {
        return malformed();
      }
      RespondStatus(conn.out, instance->RenewRed(key, token));
      return true;
    }

    case wire::Op::kDirtyListGet: {
      uint64_t config_id = 0;
      uint32_t fragment = 0;
      if (!r.GetU64(&config_id) || !r.GetU32(&fragment) || !r.Done()) {
        return malformed();
      }
      const OpContext ctx{config_id, kInvalidFragment};
      auto v = instance->Get(ctx, DirtyListKey(fragment));
      if (!v.ok()) {
        RespondStatus(conn.out, v.status());
        return true;
      }
      // Zero-copy: the value payload rides the frame as its own iovec piece
      // (wire layout matches PutValue: blob | charged | version), so large
      // values are never memcpy'd into a contiguous response buffer.
      std::string post;
      wire::PutU32(post, v->charged_bytes);
      wire::PutU64(post, v->version);
      conn.out.PushPayloadFrame(static_cast<uint8_t>(Code::kOk), {},
                                std::move(v->data), std::move(post));
      return true;
    }

    case wire::Op::kDirtyListAppend: {
      uint64_t config_id = 0;
      uint32_t fragment = 0;
      std::string_view record;
      if (!r.GetU64(&config_id) || !r.GetU32(&fragment) ||
          !r.GetBlob(&record) || !r.Done()) {
        return malformed();
      }
      const OpContext ctx{config_id, kInvalidFragment};
      RespondStatus(conn.out,
                    instance->Append(ctx, DirtyListKey(fragment), record));
      return true;
    }

    case wire::Op::kWorkingSetScan: {
      OpContext ctx;
      uint32_t num_fragments = 0;
      uint64_t cursor = 0;
      uint32_t max_keys = 0;
      if (!r.GetContext(&ctx) || !r.GetU32(&num_fragments) ||
          !r.GetU64(&cursor) || !r.GetU32(&max_keys) || !r.Done()) {
        return malformed();
      }
      // Bound the page so a hostile max_keys cannot make the response
      // outgrow kMaxFrameLen (worst case ~64KiB keys each): the scanner
      // clamps, the client just sees a smaller page and more cursors.
      constexpr uint32_t kMaxScanPage = 64 * 1024;
      auto page = instance->WorkingSetScan(ctx, num_fragments, cursor,
                                           std::min(max_keys, kMaxScanPage));
      if (!page.ok()) {
        RespondStatus(conn.out, page.status());
        return true;
      }
      std::string resp;
      wire::PutU64(resp, page->next_cursor);
      wire::PutU32(resp, static_cast<uint32_t>(page->items.size()));
      uint64_t page_bytes = 0;
      for (const WorkingSetItem& item : page->items) {
        wire::PutKey(resp, item.key);
        wire::PutU32(resp, item.charged_bytes);
        page_bytes += item.charged_bytes;
      }
      shard.ws_scan_pages.fetch_add(1, std::memory_order_relaxed);
      shard.ws_scan_keys.fetch_add(page->items.size(),
                                   std::memory_order_relaxed);
      shard.ws_scan_bytes.fetch_add(page_bytes, std::memory_order_relaxed);
      RespondOk(conn.out, resp);
      return true;
    }

    case wire::Op::kConfigIdGet: {
      if (!r.Done()) return malformed();
      std::string resp;
      wire::PutU64(resp, instance->latest_config_id());
      RespondOk(conn.out, resp);
      return true;
    }

    case wire::Op::kConfigIdBump: {
      uint64_t latest = 0;
      if (!r.GetU64(&latest) || !r.Done()) return malformed();
      instance->ObserveConfigId(latest);
      RespondOk(conn.out, {});
      return true;
    }

    case wire::Op::kSnapshot: {
      std::string_view requested;
      if (!r.GetBlob(&requested) || !r.Done()) return malformed();
      std::string path = conn.instance_options != nullptr
                             ? conn.instance_options->snapshot_path
                             : std::string();
      if (!requested.empty() && options_.allow_remote_snapshot_paths) {
        path.assign(requested);
      }
      if (path.empty()) {
        RespondStatus(conn.out, Status(Code::kInvalidArgument,
                                       "no snapshot path configured"));
        return true;
      }
      RespondStatus(conn.out, Snapshot::WriteToFile(*instance, path));
      return true;
    }

    case wire::Op::kStats: {
      if (!r.Done()) return malformed();
      HandleStats(conn);
      return true;
    }

    case wire::Op::kLeaseGrant: {
      uint32_t fragment = 0;
      uint64_t min_valid = 0;
      uint64_t ttl_us = 0;
      uint64_t latest = 0;
      if (!r.GetU32(&fragment) || !r.GetU64(&min_valid) ||
          !r.GetU64(&ttl_us) || !r.GetU64(&latest) || !r.Done()) {
        return malformed();
      }
      // Lifetimes cross the wire as TTLs; the expiry is computed in this
      // instance's own clock domain (docs/PROTOCOL.md §12.3).
      instance->GrantFragmentLease(
          fragment, min_valid,
          instance->clock().Now() + static_cast<Duration>(ttl_us), latest);
      RespondOk(conn.out, {});
      return true;
    }

    case wire::Op::kLeaseRevoke: {
      uint32_t fragment = 0;
      uint64_t latest = 0;
      if (!r.GetU32(&fragment) || !r.GetU64(&latest) || !r.Done()) {
        return malformed();
      }
      instance->RevokeFragmentLease(fragment, latest);
      RespondOk(conn.out, {});
      return true;
    }

    case wire::Op::kCoordRegister:
    case wire::Op::kCoordHeartbeat:
    case wire::Op::kCoordConfigGet:
    case wire::Op::kCoordConfigWatch:
    case wire::Op::kCoordReport:
    case wire::Op::kCoordDirtyQuery:
    case wire::Op::kCoordShadowSync:
      return HandleControlOp(conn, op, body);
  }
  return false;
}

bool TransportServer::HandleControlOp(Connection& conn, wire::Op op,
                                      std::string_view body) {
  if (options_.control == nullptr) {
    RespondStatus(conn.out,
                  Status(Code::kInvalidArgument,
                         "this server is not a coordinator"));
    return true;
  }
  ControlPlane::Reply reply = options_.control->HandleControl(op, body);
  if (reply.subscribe) conn.config_subscriber = true;
  if (reply.status.ok()) {
    RespondOk(conn.out, reply.body);
  } else {
    RespondStatus(conn.out, reply.status);
  }
  return true;
}

void TransportServer::HandleStats(Connection& conn) {
  std::vector<std::pair<std::string, uint64_t>> kv;
  const Stats server = stats();
  kv.emplace_back("server.connections_accepted", server.connections_accepted);
  kv.emplace_back("server.frames_handled", server.frames_handled);
  kv.emplace_back("server.protocol_errors", server.protocol_errors);
  kv.emplace_back("server.connections_reaped", server.connections_reaped);
  kv.emplace_back("server.accept_errors", server.accept_errors);
  // Data-plane flush efficiency: sendmsg_calls counts actual syscalls (or
  // uring SENDMSG completions), frames_per_flush shows how much coalescing
  // the gathered writes achieve, uring_sqe_batched how many SQEs rode a
  // shared io_uring_enter.
  kv.emplace_back("transport.sendmsg_calls", server.sendmsg_calls);
  kv.emplace_back("transport.flush_calls", server.flush_calls);
  kv.emplace_back("transport.frames_flushed", server.frames_flushed);
  kv.emplace_back("transport.frames_per_flush",
                  server.flush_calls > 0
                      ? server.frames_flushed / server.flush_calls
                      : 0);
  kv.emplace_back("transport.uring_sqe_batched", server.uring_sqe_batched);
  // Working-set transfer progress as seen from this server (the scan side;
  // the pulling worker keeps its own install-side counters).
  kv.emplace_back("recovery.scan_pages", server.ws_scan_pages);
  kv.emplace_back("recovery.scan_keys", server.ws_scan_keys);
  kv.emplace_back("recovery.scan_bytes", server.ws_scan_bytes);
  // Control-plane counters (cluster.*) when a coordinator is attached.
  if (options_.control != nullptr) {
    for (auto& [name, value] : options_.control->ExtraStats()) {
      kv.emplace_back(name, value);
    }
  }
  if (conn.instance != nullptr) {
    const auto it = server.per_instance.find(conn.bound_id);
    if (it != server.per_instance.end()) {
      kv.emplace_back("instance.frames_handled", it->second.frames_handled);
      kv.emplace_back("instance.protocol_errors", it->second.protocol_errors);
    }
    const CacheInstance::Stats cache = conn.instance->stats();
    kv.emplace_back("cache.hits", cache.hits);
    kv.emplace_back("cache.misses", cache.misses);
    kv.emplace_back("cache.inserts", cache.inserts);
    kv.emplace_back("cache.deletes", cache.deletes);
    kv.emplace_back("cache.evictions", cache.evictions);
    kv.emplace_back("cache.config_discards", cache.config_discards);
    kv.emplace_back("cache.used_bytes", cache.used_bytes);
    kv.emplace_back("cache.entry_count", cache.entry_count);
    if (conn.instance_options != nullptr &&
        conn.instance_options->extra_stats != nullptr) {
      for (auto& [name, value] : conn.instance_options->extra_stats()) {
        kv.emplace_back(name, value);
      }
    }
  }
  std::string resp;
  wire::PutU32(resp, static_cast<uint32_t>(kv.size()));
  for (const auto& [name, value] : kv) {
    wire::PutBlob(resp, name);
    wire::PutU64(resp, value);
  }
  RespondOk(conn.out, resp);
}

}  // namespace gemini
