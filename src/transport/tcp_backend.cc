#include "src/transport/tcp_backend.h"

#include <thread>

#include "src/common/hash.h"

namespace gemini {

TcpCacheBackend::TcpCacheBackend(std::string host, uint16_t port,
                                 InstanceId target_instance, Options options)
    : conn_(TcpConnection::Acquire(host, port, target_instance, options)) {}

TcpCacheBackend::~TcpCacheBackend() = default;

bool TcpCacheBackend::connected() const { return conn_->connected(); }

InstanceId TcpCacheBackend::id() const { return conn_->remote_id(); }

TcpConnection::BreakerState TcpCacheBackend::breaker_state() const {
  return conn_->breaker_state();
}

const TcpCacheBackend::Options& TcpCacheBackend::options() const {
  return conn_->options();
}

Status TcpCacheBackend::Connect() { return conn_->Connect(); }

void TcpCacheBackend::Disconnect() { conn_->Disconnect(); }

Status TcpCacheBackend::Transact(wire::Op op, std::string_view body,
                                 std::string* resp_body) {
  return conn_->Transact(op, body, resp_body);
}

Status TcpCacheBackend::CheckKey(std::string_view key) {
  if (key.size() > wire::kMaxKeyLen) {
    return Status(Code::kInvalidArgument, "key exceeds wire limit");
  }
  return Status::Ok();
}

// ---- Op wrappers ------------------------------------------------------------

namespace {

/// Requests that carry `ctx | key` and nothing else.
std::string CtxKeyBody(const OpContext& ctx, std::string_view key) {
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  return body;
}

}  // namespace

Result<CacheValue> TcpCacheBackend::Get(const OpContext& ctx,
                                        std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string resp;
  if (Status s = Transact(wire::Op::kGet, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  CacheValue value;
  if (!r.GetValue(&value) || !r.Done()) {
    return Status(Code::kInternal, "malformed GET response");
  }
  return value;
}

std::vector<Result<CacheValue>> TcpCacheBackend::MultiGet(
    const std::vector<GetRequest>& reqs) {
  std::vector<Result<CacheValue>> out;
  out.reserve(reqs.size());
  std::vector<TcpConnection::BatchRequest> batch;
  batch.reserve(reqs.size());
  std::vector<size_t> slot_of;  // out index of each submitted request
  for (const auto& req : reqs) {
    if (Status s = CheckKey(req.key); !s.ok()) {
      // Oversized keys never leave the client; their slots fail locally and
      // the rest of the batch still ships.
      out.push_back(std::move(s));
      continue;
    }
    out.push_back(Status(Code::kInternal, "no response"));
    slot_of.push_back(out.size() - 1);
    batch.push_back({wire::Op::kGet, CtxKeyBody(req.ctx, req.key)});
  }
  const auto fill_slot = [](Result<CacheValue>& slot,
                            TcpConnection::BatchResponse& resp) {
    if (!resp.status.ok()) {
      slot = std::move(resp.status);
      return;
    }
    wire::Reader r(resp.body);
    CacheValue value;
    if (!r.GetValue(&value) || !r.Done()) {
      slot = Status(Code::kInternal, "malformed GET response");
    } else {
      slot = std::move(value);
    }
  };

  const RetryPolicy& policy = options().retry;
  const Timestamp start = SystemClock::Global().Now();
  std::vector<TcpConnection::BatchResponse> resps = conn_->TransactBatch(batch);
  for (size_t i = 0; i < resps.size(); ++i) {
    fill_slot(out[slot_of[i]], resps[i]);
  }

  // Gets are idempotent, so kUnavailable slots (a connection drop failed
  // part or all of the burst) are re-batched together and retried under the
  // same attempt/backoff/deadline budget a single Get would get.
  for (int attempt = 2; attempt <= policy.max_attempts; ++attempt) {
    std::vector<size_t> failed;  // indices into batch/slot_of
    for (size_t i = 0; i < batch.size(); ++i) {
      const Result<CacheValue>& slot = out[slot_of[i]];
      if (!slot.ok() && slot.status().code() == Code::kUnavailable) {
        failed.push_back(i);
      }
    }
    if (failed.empty()) break;
    const Duration elapsed = SystemClock::Global().Now() - start;
    const Duration sleep = TcpConnection::BackoffBeforeAttempt(
        policy, attempt, elapsed, Fnv1a64("multiget") ^ failed.size());
    if (sleep < 0) break;  // deadline budget exhausted
    if (sleep > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep));
    }
    std::vector<TcpConnection::BatchRequest> retry_batch;
    retry_batch.reserve(failed.size());
    for (size_t i : failed) retry_batch.push_back(batch[i]);
    std::vector<TcpConnection::BatchResponse> retry_resps =
        conn_->TransactBatch(retry_batch);
    for (size_t j = 0; j < retry_resps.size(); ++j) {
      fill_slot(out[slot_of[failed[j]]], retry_resps[j]);
    }
  }
  return out;
}

Result<IqGetResult> TcpCacheBackend::IqGet(const OpContext& ctx,
                                           std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string resp;
  if (Status s = Transact(wire::Op::kIqGet, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint8_t hit = 0;
  IqGetResult out;
  if (!r.GetU8(&hit)) return Status(Code::kInternal, "malformed IQGET");
  if (hit != 0) {
    CacheValue value;
    if (!r.GetValue(&value)) return Status(Code::kInternal, "malformed IQGET");
    out.value = std::move(value);
  }
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed IQGET");
  }
  out.i_token = token;
  return out;
}

Status TcpCacheBackend::IqSet(const OpContext& ctx, std::string_view key,
                              CacheValue value, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  wire::PutValue(body, value);
  std::string resp;
  return Transact(wire::Op::kIqSet, body, &resp);
}

Result<LeaseToken> TcpCacheBackend::Qareg(const OpContext& ctx,
                                          std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string resp;
  if (Status s = Transact(wire::Op::kQareg, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed QAREG response");
  }
  return static_cast<LeaseToken>(token);
}

Status TcpCacheBackend::Dar(const OpContext& ctx, std::string_view key,
                            LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::string resp;
  return Transact(wire::Op::kDar, body, &resp);
}

Status TcpCacheBackend::Rar(const OpContext& ctx, std::string_view key,
                            CacheValue value, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  wire::PutValue(body, value);
  std::string resp;
  return Transact(wire::Op::kRar, body, &resp);
}

Result<LeaseToken> TcpCacheBackend::ISet(const OpContext& ctx,
                                         std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string resp;
  if (Status s = Transact(wire::Op::kISet, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed ISET response");
  }
  return static_cast<LeaseToken>(token);
}

Status TcpCacheBackend::IDelete(const OpContext& ctx, std::string_view key,
                                LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::string resp;
  return Transact(wire::Op::kIDelete, body, &resp);
}

Status TcpCacheBackend::Delete(const OpContext& ctx, std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string resp;
  return Transact(wire::Op::kDelete, CtxKeyBody(ctx, key), &resp);
}

Status TcpCacheBackend::Set(const OpContext& ctx, std::string_view key,
                            CacheValue value) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutValue(body, value);
  std::string resp;
  return Transact(wire::Op::kSet, body, &resp);
}

namespace {

/// Decodes a bulk response (`u32 count | count * u8 code`) into the `out`
/// slots named by `slot_of`. Any shape mismatch fails every shipped slot
/// kInternal — a server that answered kOk but miscounted is a protocol bug,
/// not a partial success.
void FillBulkSlots(std::string_view resp, const std::vector<size_t>& slot_of,
                   std::vector<Status>& out) {
  wire::Reader r(resp);
  uint32_t got = 0;
  const bool shape_ok =
      r.GetU32(&got) && got == slot_of.size() && r.remaining() == got;
  if (!shape_ok) {
    for (size_t i : slot_of) {
      out[i] = Status(Code::kInternal, "malformed bulk response");
    }
    return;
  }
  for (size_t i : slot_of) {
    uint8_t code = 0;
    r.GetU8(&code);
    const Code c = wire::CodeFromWire(code);
    out[i] = c == Code::kOk ? Status::Ok() : Status(c, "bulk slot failed");
  }
}

}  // namespace

std::vector<Status> TcpCacheBackend::MultiSet(std::vector<SetRequest> reqs) {
  std::vector<Status> out(reqs.size(), Status::Ok());
  std::string body;
  std::vector<size_t> slot_of;  // out index of each shipped entry
  std::string entries;
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (Status s = CheckKey(reqs[i].key); !s.ok()) {
      // Oversized keys never leave the client; their slots fail locally and
      // the rest of the batch still ships (mirrors MultiGet).
      out[i] = std::move(s);
      continue;
    }
    slot_of.push_back(i);
    wire::PutContext(entries, reqs[i].ctx);
    wire::PutKey(entries, reqs[i].key);
    wire::PutValue(entries, reqs[i].value);
  }
  if (slot_of.empty()) return out;
  wire::PutU32(body, static_cast<uint32_t>(slot_of.size()));
  body += entries;
  if (1 + body.size() > wire::kMaxFrameLen) {
    for (size_t i : slot_of) {
      out[i] = Status(Code::kInvalidArgument, "batch exceeds frame limit");
    }
    return out;
  }
  // ONE frame, one response. The batch is non-idempotent (a replay would
  // re-apply N writes), so Transact's retry loop — gated on IsIdempotentOp —
  // never re-sends it: transport loss fails every shipped slot fast.
  std::string resp;
  if (Status s = Transact(wire::Op::kMultiSet, body, &resp); !s.ok()) {
    for (size_t i : slot_of) out[i] = s;
    return out;
  }
  FillBulkSlots(resp, slot_of, out);
  return out;
}

std::vector<Status> TcpCacheBackend::MultiDelete(
    const std::vector<DeleteRequest>& reqs) {
  std::vector<Status> out(reqs.size(), Status::Ok());
  std::string body;
  std::vector<size_t> slot_of;
  std::string entries;
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (Status s = CheckKey(reqs[i].key); !s.ok()) {
      out[i] = std::move(s);
      continue;
    }
    slot_of.push_back(i);
    wire::PutContext(entries, reqs[i].ctx);
    wire::PutKey(entries, reqs[i].key);
  }
  if (slot_of.empty()) return out;
  wire::PutU32(body, static_cast<uint32_t>(slot_of.size()));
  body += entries;
  if (1 + body.size() > wire::kMaxFrameLen) {
    for (size_t i : slot_of) {
      out[i] = Status(Code::kInvalidArgument, "batch exceeds frame limit");
    }
    return out;
  }
  std::string resp;
  if (Status s = Transact(wire::Op::kMultiDelete, body, &resp); !s.ok()) {
    for (size_t i : slot_of) out[i] = s;
    return out;
  }
  FillBulkSlots(resp, slot_of, out);
  return out;
}

Status TcpCacheBackend::Cas(const OpContext& ctx, std::string_view key,
                            Version expected, CacheValue value) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, expected);
  wire::PutValue(body, value);
  std::string resp;
  return Transact(wire::Op::kCas, body, &resp);
}

Status TcpCacheBackend::WriteBackInstall(const OpContext& ctx,
                                         std::string_view key,
                                         CacheValue value, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  wire::PutValue(body, value);
  std::string resp;
  return Transact(wire::Op::kWriteBackInstall, body, &resp);
}

Status TcpCacheBackend::Append(const OpContext& ctx, std::string_view key,
                               std::string_view data) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutBlob(body, data);
  std::string resp;
  return Transact(wire::Op::kAppend, body, &resp);
}

Result<LeaseToken> TcpCacheBackend::AcquireRed(std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutKey(body, key);
  std::string resp;
  if (Status s = Transact(wire::Op::kRedAcquire, body, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed RED response");
  }
  return static_cast<LeaseToken>(token);
}

Status TcpCacheBackend::ReleaseRed(std::string_view key, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::string resp;
  return Transact(wire::Op::kRedRelease, body, &resp);
}

Status TcpCacheBackend::RenewRed(std::string_view key, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::string resp;
  return Transact(wire::Op::kRedRenew, body, &resp);
}

Result<WorkingSetPage> TcpCacheBackend::WorkingSetScan(const OpContext& ctx,
                                                       uint32_t num_fragments,
                                                       uint64_t cursor,
                                                       uint32_t max_keys) {
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutU32(body, num_fragments);
  wire::PutU64(body, cursor);
  wire::PutU32(body, max_keys);
  std::string resp;
  if (Status s = Transact(wire::Op::kWorkingSetScan, body, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  WorkingSetPage page;
  uint32_t count = 0;
  if (!r.GetU64(&page.next_cursor) || !r.GetU32(&count) ||
      static_cast<uint64_t>(count) * 6 > r.remaining()) {
    // Each item is >= 6 wire bytes (key len 2 | charged 4).
    return Status(Code::kInternal, "malformed WORKING_SET_SCAN response");
  }
  page.items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view key;
    uint32_t charged = 0;
    if (!r.GetKey(&key) || !r.GetU32(&charged)) {
      return Status(Code::kInternal, "malformed WORKING_SET_SCAN response");
    }
    page.items.push_back(WorkingSetItem{std::string(key), charged});
  }
  if (!r.Done()) {
    return Status(Code::kInternal, "malformed WORKING_SET_SCAN response");
  }
  return page;
}

Status TcpCacheBackend::Ping() {
  std::string resp;
  return Transact(wire::Op::kPing, {}, &resp);
}

Result<std::vector<InstanceId>> TcpCacheBackend::ListInstances() {
  return conn_->ListInstances();
}

Result<ConfigId> TcpCacheBackend::RemoteConfigId() {
  std::string resp;
  if (Status s = Transact(wire::Op::kConfigIdGet, {}, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t id = 0;
  if (!r.GetU64(&id) || !r.Done()) {
    return Status(Code::kInternal, "malformed CONFIG_ID response");
  }
  return static_cast<ConfigId>(id);
}

Status TcpCacheBackend::BumpConfigId(ConfigId latest) {
  std::string body;
  wire::PutU64(body, latest);
  std::string resp;
  return Transact(wire::Op::kConfigIdBump, body, &resp);
}

Result<CacheValue> TcpCacheBackend::DirtyListGet(ConfigId config_id,
                                                 FragmentId fragment) {
  std::string body;
  wire::PutU64(body, config_id);
  wire::PutU32(body, fragment);
  std::string resp;
  if (Status s = Transact(wire::Op::kDirtyListGet, body, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  CacheValue value;
  if (!r.GetValue(&value) || !r.Done()) {
    return Status(Code::kInternal, "malformed DIRTY_GET response");
  }
  return value;
}

Status TcpCacheBackend::DirtyListAppend(ConfigId config_id,
                                        FragmentId fragment,
                                        std::string_view record) {
  std::string body;
  wire::PutU64(body, config_id);
  wire::PutU32(body, fragment);
  wire::PutBlob(body, record);
  std::string resp;
  return Transact(wire::Op::kDirtyListAppend, body, &resp);
}

Status TcpCacheBackend::TriggerSnapshot(std::string_view path) {
  std::string body;
  wire::PutBlob(body, path);
  std::string resp;
  return Transact(wire::Op::kSnapshot, body, &resp);
}

}  // namespace gemini
