#include "src/transport/tcp_backend.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace gemini {

namespace {

Status SocketError(const char* what) {
  return Status(Code::kUnavailable,
                std::string(what) + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int optname, Duration d) {
  if (d <= 0) return;
  struct timeval tv;
  tv.tv_sec = d / kSecond;
  tv.tv_usec = d % kSecond;
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

}  // namespace

TcpCacheBackend::TcpCacheBackend(std::string host, uint16_t port,
                                 Options options)
    : host_(std::move(host)), port_(port), options_(options) {}

TcpCacheBackend::~TcpCacheBackend() { Disconnect(); }

bool TcpCacheBackend::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

InstanceId TcpCacheBackend::id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_id_;
}

Status TcpCacheBackend::Connect() {
  std::lock_guard<std::mutex> lock(mu_);
  return ConnectLocked();
}

void TcpCacheBackend::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  DisconnectLocked();
}

void TcpCacheBackend::DisconnectLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  recv_buf_.clear();
}

Status TcpCacheBackend::ConnectLocked() {
  if (fd_ >= 0) return Status::Ok();

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port_);
  if (::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status(Code::kUnavailable, "cannot resolve " + host_);
  }

  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return SocketError("socket");
  }

  // Non-blocking connect with a poll()-based timeout, then back to blocking
  // with per-call IO timeouts.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return SocketError("connect");
  }
  if (rc != 0) {
    struct pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>(options_.connect_timeout / kMillisecond);
    rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return Status(Code::kUnavailable,
                    "connect to " + host_ + ":" + port_str +
                        (rc <= 0 ? " timed out" : " refused"));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetTimeout(fd, SO_RCVTIMEO, options_.io_timeout);
  SetTimeout(fd, SO_SNDTIMEO, options_.io_timeout);
  fd_ = fd;
  recv_buf_.clear();

  // HELLO: version exchange + the remote instance id.
  std::string body;
  wire::PutU32(body, wire::kProtocolVersion);
  std::string resp;
  Status s = TransactLocked(wire::Op::kHello, body, &resp);
  if (!s.ok()) {
    DisconnectLocked();
    if (s.code() == Code::kInvalidArgument) {
      return Status(Code::kInternal, "protocol version rejected by server: " +
                                         s.message());
    }
    return s;
  }
  wire::Reader r(resp);
  uint32_t version = 0, instance_id = 0;
  if (!r.GetU32(&version) || !r.GetU32(&instance_id) || !r.Done() ||
      version != wire::kProtocolVersion) {
    DisconnectLocked();
    return Status(Code::kInternal, "malformed HELLO response");
  }
  remote_id_ = instance_id;
  return Status::Ok();
}

Status TcpCacheBackend::EnsureConnectedLocked() {
  if (fd_ >= 0) return Status::Ok();
  if (!options_.auto_reconnect) {
    return Status(Code::kUnavailable, "not connected");
  }
  return ConnectLocked();
}

Status TcpCacheBackend::SendAllLocked(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return SocketError("send");
  }
  return Status::Ok();
}

Status TcpCacheBackend::ReadFrameLocked(uint8_t* tag, std::string* body) {
  char buf[64 * 1024];
  for (;;) {
    size_t consumed = 0;
    std::string_view view;
    const wire::DecodeResult r =
        wire::DecodeFrame(recv_buf_, &consumed, tag, &view);
    if (r == wire::DecodeResult::kFrame) {
      body->assign(view);
      recv_buf_.erase(0, consumed);
      return Status::Ok();
    }
    if (r == wire::DecodeResult::kMalformed) {
      return Status(Code::kInternal, "malformed response frame");
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_buf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status(Code::kUnavailable, "server closed connection");
    return SocketError("recv");
  }
}

Status TcpCacheBackend::TransactLocked(wire::Op op, std::string_view body,
                                       std::string* resp_body) {
  std::string frame;
  frame.reserve(wire::kFrameHeaderLen + body.size());
  wire::AppendRequest(frame, op, body);
  Status s = SendAllLocked(frame);
  uint8_t tag = 0;
  if (s.ok()) s = ReadFrameLocked(&tag, resp_body);
  if (!s.ok()) {
    // The request/response stream is torn (bytes may be half-sent or
    // half-read); drop the socket so the next call starts clean.
    DisconnectLocked();
    return s;
  }
  const Code code = wire::CodeFromWire(tag);
  if (code == Code::kOk) return Status::Ok();
  // Non-ok reply: the body optionally carries a message blob.
  wire::Reader r(*resp_body);
  std::string_view message;
  if (r.GetBlob(&message) && r.Done() && !message.empty()) {
    return Status(code, std::string(message));
  }
  return Status(code);
}

Status TcpCacheBackend::CheckKey(std::string_view key) {
  if (key.size() > wire::kMaxKeyLen) {
    return Status(Code::kInvalidArgument, "key exceeds wire limit");
  }
  return Status::Ok();
}

// ---- Op wrappers ------------------------------------------------------------

namespace {

/// Requests that carry `ctx | key` and nothing else.
std::string CtxKeyBody(const OpContext& ctx, std::string_view key) {
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  return body;
}

}  // namespace

Result<CacheValue> TcpCacheBackend::Get(const OpContext& ctx,
                                        std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s = TransactLocked(wire::Op::kGet, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  CacheValue value;
  if (!r.GetValue(&value) || !r.Done()) {
    return Status(Code::kInternal, "malformed GET response");
  }
  return value;
}

Result<IqGetResult> TcpCacheBackend::IqGet(const OpContext& ctx,
                                           std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s =
          TransactLocked(wire::Op::kIqGet, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint8_t hit = 0;
  IqGetResult out;
  if (!r.GetU8(&hit)) return Status(Code::kInternal, "malformed IQGET");
  if (hit != 0) {
    CacheValue value;
    if (!r.GetValue(&value)) return Status(Code::kInternal, "malformed IQGET");
    out.value = std::move(value);
  }
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed IQGET");
  }
  out.i_token = token;
  return out;
}

Status TcpCacheBackend::IqSet(const OpContext& ctx, std::string_view key,
                              CacheValue value, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  wire::PutValue(body, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kIqSet, body, &resp);
}

Result<LeaseToken> TcpCacheBackend::Qareg(const OpContext& ctx,
                                          std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s =
          TransactLocked(wire::Op::kQareg, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed QAREG response");
  }
  return static_cast<LeaseToken>(token);
}

Status TcpCacheBackend::Dar(const OpContext& ctx, std::string_view key,
                            LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kDar, body, &resp);
}

Status TcpCacheBackend::Rar(const OpContext& ctx, std::string_view key,
                            CacheValue value, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  wire::PutValue(body, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kRar, body, &resp);
}

Result<LeaseToken> TcpCacheBackend::ISet(const OpContext& ctx,
                                         std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s = TransactLocked(wire::Op::kISet, CtxKeyBody(ctx, key), &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed ISET response");
  }
  return static_cast<LeaseToken>(token);
}

Status TcpCacheBackend::IDelete(const OpContext& ctx, std::string_view key,
                                LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kIDelete, body, &resp);
}

Status TcpCacheBackend::Delete(const OpContext& ctx, std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kDelete, CtxKeyBody(ctx, key), &resp);
}

Status TcpCacheBackend::Set(const OpContext& ctx, std::string_view key,
                            CacheValue value) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutValue(body, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kSet, body, &resp);
}

Status TcpCacheBackend::Cas(const OpContext& ctx, std::string_view key,
                            Version expected, CacheValue value) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, expected);
  wire::PutValue(body, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kCas, body, &resp);
}

Status TcpCacheBackend::WriteBackInstall(const OpContext& ctx,
                                         std::string_view key,
                                         CacheValue value, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  wire::PutValue(body, value);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kWriteBackInstall, body, &resp);
}

Status TcpCacheBackend::Append(const OpContext& ctx, std::string_view key,
                               std::string_view data) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutContext(body, ctx);
  wire::PutKey(body, key);
  wire::PutBlob(body, data);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kAppend, body, &resp);
}

Result<LeaseToken> TcpCacheBackend::AcquireRed(std::string_view key) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutKey(body, key);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s = TransactLocked(wire::Op::kRedAcquire, body, &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t token = 0;
  if (!r.GetU64(&token) || !r.Done()) {
    return Status(Code::kInternal, "malformed RED response");
  }
  return static_cast<LeaseToken>(token);
}

Status TcpCacheBackend::ReleaseRed(std::string_view key, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kRedRelease, body, &resp);
}

Status TcpCacheBackend::RenewRed(std::string_view key, LeaseToken token) {
  if (Status s = CheckKey(key); !s.ok()) return s;
  std::string body;
  wire::PutKey(body, key);
  wire::PutU64(body, token);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kRedRenew, body, &resp);
}

Status TcpCacheBackend::Ping() {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kPing, {}, &resp);
}

Result<ConfigId> TcpCacheBackend::RemoteConfigId() {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s = TransactLocked(wire::Op::kConfigIdGet, {}, &resp); !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  uint64_t id = 0;
  if (!r.GetU64(&id) || !r.Done()) {
    return Status(Code::kInternal, "malformed CONFIG_ID response");
  }
  return static_cast<ConfigId>(id);
}

Status TcpCacheBackend::BumpConfigId(ConfigId latest) {
  std::string body;
  wire::PutU64(body, latest);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kConfigIdBump, body, &resp);
}

Result<CacheValue> TcpCacheBackend::DirtyListGet(ConfigId config_id,
                                                 FragmentId fragment) {
  std::string body;
  wire::PutU64(body, config_id);
  wire::PutU32(body, fragment);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  if (Status s = TransactLocked(wire::Op::kDirtyListGet, body, &resp);
      !s.ok()) {
    return s;
  }
  wire::Reader r(resp);
  CacheValue value;
  if (!r.GetValue(&value) || !r.Done()) {
    return Status(Code::kInternal, "malformed DIRTY_GET response");
  }
  return value;
}

Status TcpCacheBackend::DirtyListAppend(ConfigId config_id,
                                        FragmentId fragment,
                                        std::string_view record) {
  std::string body;
  wire::PutU64(body, config_id);
  wire::PutU32(body, fragment);
  wire::PutBlob(body, record);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kDirtyListAppend, body, &resp);
}

Status TcpCacheBackend::TriggerSnapshot(std::string_view path) {
  std::string body;
  wire::PutBlob(body, path);
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = EnsureConnectedLocked(); !s.ok()) return s;
  std::string resp;
  return TransactLocked(wire::Op::kSnapshot, body, &resp);
}

}  // namespace gemini
