// TcpCacheBackend: a CacheBackend that fronts a remote geminid over TCP.
//
// One blocking socket per backend, one outstanding request at a time (an
// internal mutex serializes callers, so a GeminiClient shared across threads
// behaves exactly as it does against an in-process CacheInstance). Every
// operation is one wire frame and one response frame; connection loss maps
// to kUnavailable — the same code an in-process failed instance returns — so
// GeminiClient's failover machinery (configuration refresh, store
// fall-through, write suspension) drives recovery with no transport-specific
// logic. By default the backend redials transparently on the next call
// after a drop.
#pragma once

#include <mutex>
#include <string>

#include "src/cache/cache_backend.h"
#include "src/common/clock.h"
#include "src/transport/wire.h"

namespace gemini {

class TcpCacheBackend : public CacheBackend {
 public:
  struct Options {
    Duration connect_timeout = Seconds(5);
    /// Per-call socket send/receive timeout (0 = OS default, i.e. block).
    Duration io_timeout = Seconds(30);
    /// Redial automatically on the first call after a connection drop.
    bool auto_reconnect = true;
  };

  TcpCacheBackend(std::string host, uint16_t port)
      : TcpCacheBackend(std::move(host), port, Options()) {}
  TcpCacheBackend(std::string host, uint16_t port, Options options);
  ~TcpCacheBackend() override;

  TcpCacheBackend(const TcpCacheBackend&) = delete;
  TcpCacheBackend& operator=(const TcpCacheBackend&) = delete;

  /// Dials and runs the HELLO handshake. Idempotent; kUnavailable when the
  /// server cannot be reached, kInternal on a protocol-version mismatch.
  Status Connect();
  void Disconnect();
  [[nodiscard]] bool connected() const;

  /// The remote instance's id, learned from HELLO (kInvalidInstance until
  /// the first successful Connect()).
  [[nodiscard]] InstanceId id() const override;

  // ---- CacheBackend ---------------------------------------------------------

  Result<CacheValue> Get(const OpContext& ctx, std::string_view key) override;
  Result<IqGetResult> IqGet(const OpContext& ctx,
                            std::string_view key) override;
  Status IqSet(const OpContext& ctx, std::string_view key, CacheValue value,
               LeaseToken token) override;
  Result<LeaseToken> Qareg(const OpContext& ctx,
                           std::string_view key) override;
  Status Dar(const OpContext& ctx, std::string_view key,
             LeaseToken token) override;
  Status Rar(const OpContext& ctx, std::string_view key, CacheValue value,
             LeaseToken token) override;
  Result<LeaseToken> ISet(const OpContext& ctx,
                          std::string_view key) override;
  Status IDelete(const OpContext& ctx, std::string_view key,
                 LeaseToken token) override;
  Status Delete(const OpContext& ctx, std::string_view key) override;
  Status Set(const OpContext& ctx, std::string_view key,
             CacheValue value) override;
  Status Cas(const OpContext& ctx, std::string_view key, Version expected,
             CacheValue value) override;
  Status WriteBackInstall(const OpContext& ctx, std::string_view key,
                          CacheValue value, LeaseToken token) override;
  Status Append(const OpContext& ctx, std::string_view key,
                std::string_view data) override;
  Result<LeaseToken> AcquireRed(std::string_view key) override;
  Status ReleaseRed(std::string_view key, LeaseToken token) override;
  Status RenewRed(std::string_view key, LeaseToken token) override;

  // ---- Wire-only extras -----------------------------------------------------

  Status Ping();
  /// The remote instance's latest observed configuration id.
  Result<ConfigId> RemoteConfigId();
  /// Advances the remote instance's latest observed configuration id.
  Status BumpConfigId(ConfigId latest);
  /// Dirty-list ops by fragment id (the server owns the key scheme).
  Result<CacheValue> DirtyListGet(ConfigId config_id, FragmentId fragment);
  Status DirtyListAppend(ConfigId config_id, FragmentId fragment,
                         std::string_view record);
  /// Asks the server to persist a snapshot. `path` is honored only when the
  /// server allows remote paths; empty uses the server's configured target.
  Status TriggerSnapshot(std::string_view path = {});

 private:
  /// Sends one request and decodes the response; requires mu_ held.
  /// `resp_body` receives the response payload of a kOk reply; a non-ok
  /// reply becomes the returned Status (message from the body blob).
  Status TransactLocked(wire::Op op, std::string_view body,
                        std::string* resp_body);
  Status ConnectLocked();
  Status EnsureConnectedLocked();
  void DisconnectLocked();
  Status SendAllLocked(std::string_view bytes);
  /// Reads until one full frame is buffered; outputs its tag and body.
  Status ReadFrameLocked(uint8_t* tag, std::string* body);

  /// Shared guard-rail: keys above the wire limit never leave the client.
  static Status CheckKey(std::string_view key);

  const std::string host_;
  const uint16_t port_;
  const Options options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  InstanceId remote_id_ = kInvalidInstance;
  std::string recv_buf_;
};

}  // namespace gemini
