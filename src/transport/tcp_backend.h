// TcpCacheBackend: a CacheBackend that fronts a remote geminid over TCP.
//
// A backend names `(endpoint, instance)` — since a geminid can host many
// CacheInstances behind one event loop, the instance id picks which one
// this backend talks to (kAnyInstance = the server's default, which is
// what a single-instance geminid serves). The socket itself lives in a
// shared TcpConnection (src/transport/tcp_connection.h): every backend in
// the process targeting the same (host, port, instance) multiplexes one
// *pipelined* connection — so a GeminiClient, a recovery worker, and a
// flusher pointed at the same instance cost one socket, not three, and
// their requests share the in-flight window instead of waiting on each
// other's round trips.
//
// Every operation is one wire frame and one response frame; connection
// loss maps to kUnavailable — the same code an in-process failed instance
// returns — so GeminiClient's failover machinery (configuration refresh,
// store fall-through, write suspension) drives recovery with no
// transport-specific logic. By default the backend redials transparently
// on the next call after a drop.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_backend.h"
#include "src/common/clock.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {

class TcpCacheBackend : public CacheBackend {
 public:
  using Options = TcpConnection::Options;

  TcpCacheBackend(std::string host, uint16_t port)
      : TcpCacheBackend(std::move(host), port, wire::kAnyInstance,
                        Options()) {}
  TcpCacheBackend(std::string host, uint16_t port, Options options)
      : TcpCacheBackend(std::move(host), port, wire::kAnyInstance, options) {}
  /// Targets a specific instance on a multi-instance server; the HELLO
  /// handshake fails with kWrongInstance when the server does not host it.
  TcpCacheBackend(std::string host, uint16_t port,
                  InstanceId target_instance, Options options = Options());
  ~TcpCacheBackend() override;

  TcpCacheBackend(const TcpCacheBackend&) = delete;
  TcpCacheBackend& operator=(const TcpCacheBackend&) = delete;

  /// Dials and runs the HELLO handshake. Idempotent; kUnavailable when the
  /// server cannot be reached, kWrongInstance when it does not host the
  /// target instance, kInternal on a protocol-version mismatch.
  Status Connect();
  /// Closes the underlying (possibly shared) socket; sharers redial on
  /// their next call.
  void Disconnect();
  [[nodiscard]] bool connected() const;

  /// The remote instance's id, learned from HELLO (kInvalidInstance until
  /// the first successful Connect()).
  [[nodiscard]] InstanceId id() const override;

  /// Circuit-breaker state of the underlying (possibly shared) connection;
  /// kOpen means calls fail fast with kUnavailable without dialing.
  [[nodiscard]] TcpConnection::BreakerState breaker_state() const;

  /// The effective connection options. When the connection is shared, these
  /// are the *creator's* options, which may differ from the ones this
  /// backend was constructed with (see TcpConnection::Acquire).
  [[nodiscard]] const Options& options() const;

  // ---- CacheBackend ---------------------------------------------------------

  Result<CacheValue> Get(const OpContext& ctx, std::string_view key) override;
  /// Issues the whole batch as one pipelined burst over the shared
  /// connection: N gets cost ~1 round trip (window permitting) instead of N.
  /// Under a RetryPolicy with max_attempts > 1, slots that failed with
  /// kUnavailable are re-batched and retried together (gets are idempotent)
  /// within the same attempt/deadline budget as a single Get.
  std::vector<Result<CacheValue>> MultiGet(
      const std::vector<GetRequest>& reqs) override;
  Result<IqGetResult> IqGet(const OpContext& ctx,
                            std::string_view key) override;
  Status IqSet(const OpContext& ctx, std::string_view key, CacheValue value,
               LeaseToken token) override;
  Result<LeaseToken> Qareg(const OpContext& ctx,
                           std::string_view key) override;
  Status Dar(const OpContext& ctx, std::string_view key,
             LeaseToken token) override;
  Status Rar(const OpContext& ctx, std::string_view key, CacheValue value,
             LeaseToken token) override;
  Result<LeaseToken> ISet(const OpContext& ctx,
                          std::string_view key) override;
  Status IDelete(const OpContext& ctx, std::string_view key,
                 LeaseToken token) override;
  Status Delete(const OpContext& ctx, std::string_view key) override;
  Status Set(const OpContext& ctx, std::string_view key,
             CacheValue value) override;
  /// Ships the whole batch as ONE kMultiSet frame (one round trip total,
  /// not one per window slot). Unlike MultiGet there is no retry loop:
  /// bulk writes are non-idempotent, so on transport loss every shipped
  /// slot fails kUnavailable and the caller decides what to re-run.
  std::vector<Status> MultiSet(std::vector<SetRequest> reqs) override;
  /// One kMultiDelete frame; same fail-fast contract as MultiSet.
  std::vector<Status> MultiDelete(
      const std::vector<DeleteRequest>& reqs) override;
  Status Cas(const OpContext& ctx, std::string_view key, Version expected,
             CacheValue value) override;
  Status WriteBackInstall(const OpContext& ctx, std::string_view key,
                          CacheValue value, LeaseToken token) override;
  Status Append(const OpContext& ctx, std::string_view key,
                std::string_view data) override;
  Result<LeaseToken> AcquireRed(std::string_view key) override;
  Status ReleaseRed(std::string_view key, LeaseToken token) override;
  Status RenewRed(std::string_view key, LeaseToken token) override;
  /// One kWorkingSetScan frame per page (docs/PROTOCOL.md §13). Idempotent:
  /// the retry layer may resend a dropped page, and any returned cursor
  /// resumes the scan after a reconnect.
  Result<WorkingSetPage> WorkingSetScan(const OpContext& ctx,
                                        uint32_t num_fragments,
                                        uint64_t cursor,
                                        uint32_t max_keys) override;

  // ---- Wire-only extras -----------------------------------------------------

  Status Ping();
  /// The instance ids the remote server hosts (discovery for tools and
  /// cluster bring-up).
  Result<std::vector<InstanceId>> ListInstances();
  /// The remote instance's latest observed configuration id.
  Result<ConfigId> RemoteConfigId();
  /// Advances the remote instance's latest observed configuration id.
  Status BumpConfigId(ConfigId latest);
  /// Dirty-list ops by fragment id (the server owns the key scheme).
  Result<CacheValue> DirtyListGet(ConfigId config_id, FragmentId fragment);
  Status DirtyListAppend(ConfigId config_id, FragmentId fragment,
                         std::string_view record);
  /// Asks the server to persist a snapshot of the bound instance. `path`
  /// is honored only when the server allows remote paths; empty uses the
  /// server's configured per-instance target.
  Status TriggerSnapshot(std::string_view path = {});

 private:
  /// One round trip over the shared connection.
  Status Transact(wire::Op op, std::string_view body, std::string* resp_body);

  /// Shared guard-rail: keys above the wire limit never leave the client.
  static Status CheckKey(std::string_view key);

  std::shared_ptr<TcpConnection> conn_;
};

}  // namespace gemini
