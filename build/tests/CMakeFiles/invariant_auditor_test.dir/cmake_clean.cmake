file(REMOVE_RECURSE
  "CMakeFiles/invariant_auditor_test.dir/invariant_auditor_test.cc.o"
  "CMakeFiles/invariant_auditor_test.dir/invariant_auditor_test.cc.o.d"
  "invariant_auditor_test"
  "invariant_auditor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invariant_auditor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
