# Empty dependencies file for invariant_auditor_test.
# This may be replaced when dependencies are built.
