# Empty dependencies file for lifecycle_integration_test.
# This may be replaced when dependencies are built.
