file(REMOVE_RECURSE
  "CMakeFiles/lifecycle_integration_test.dir/lifecycle_integration_test.cc.o"
  "CMakeFiles/lifecycle_integration_test.dir/lifecycle_integration_test.cc.o.d"
  "lifecycle_integration_test"
  "lifecycle_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifecycle_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
