# Empty compiler generated dependencies file for dirty_list_test.
# This may be replaced when dependencies are built.
