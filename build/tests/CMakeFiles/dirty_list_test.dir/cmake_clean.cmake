file(REMOVE_RECURSE
  "CMakeFiles/dirty_list_test.dir/dirty_list_test.cc.o"
  "CMakeFiles/dirty_list_test.dir/dirty_list_test.cc.o.d"
  "dirty_list_test"
  "dirty_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirty_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
