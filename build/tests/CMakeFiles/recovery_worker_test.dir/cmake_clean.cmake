file(REMOVE_RECURSE
  "CMakeFiles/recovery_worker_test.dir/recovery_worker_test.cc.o"
  "CMakeFiles/recovery_worker_test.dir/recovery_worker_test.cc.o.d"
  "recovery_worker_test"
  "recovery_worker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
