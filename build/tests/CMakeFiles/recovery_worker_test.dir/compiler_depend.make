# Empty compiler generated dependencies file for recovery_worker_test.
# This may be replaced when dependencies are built.
