file(REMOVE_RECURSE
  "CMakeFiles/common_time_series_test.dir/common_time_series_test.cc.o"
  "CMakeFiles/common_time_series_test.dir/common_time_series_test.cc.o.d"
  "common_time_series_test"
  "common_time_series_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_time_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
