# Empty dependencies file for cache_instance_test.
# This may be replaced when dependencies are built.
