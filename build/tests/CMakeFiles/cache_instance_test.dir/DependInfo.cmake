
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache_instance_test.cc" "tests/CMakeFiles/cache_instance_test.dir/cache_instance_test.cc.o" "gcc" "tests/CMakeFiles/cache_instance_test.dir/cache_instance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lease/CMakeFiles/gemini_lease.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gemini_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gemini_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gemini_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coordinator/CMakeFiles/gemini_coordinator.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/gemini_client.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/gemini_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gemini_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/consistency/CMakeFiles/gemini_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gemini_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/gemini_replication.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
