file(REMOVE_RECURSE
  "CMakeFiles/cache_instance_test.dir/cache_instance_test.cc.o"
  "CMakeFiles/cache_instance_test.dir/cache_instance_test.cc.o.d"
  "cache_instance_test"
  "cache_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
