# Empty dependencies file for coordinator_group_test.
# This may be replaced when dependencies are built.
