file(REMOVE_RECURSE
  "CMakeFiles/coordinator_group_test.dir/coordinator_group_test.cc.o"
  "CMakeFiles/coordinator_group_test.dir/coordinator_group_test.cc.o.d"
  "coordinator_group_test"
  "coordinator_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinator_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
