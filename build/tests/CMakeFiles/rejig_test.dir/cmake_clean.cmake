file(REMOVE_RECURSE
  "CMakeFiles/rejig_test.dir/rejig_test.cc.o"
  "CMakeFiles/rejig_test.dir/rejig_test.cc.o.d"
  "rejig_test"
  "rejig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
