# Empty dependencies file for rejig_test.
# This may be replaced when dependencies are built.
