# Empty dependencies file for common_clock_hash_test.
# This may be replaced when dependencies are built.
