file(REMOVE_RECURSE
  "CMakeFiles/lease_table_test.dir/lease_table_test.cc.o"
  "CMakeFiles/lease_table_test.dir/lease_table_test.cc.o.d"
  "lease_table_test"
  "lease_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lease_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
