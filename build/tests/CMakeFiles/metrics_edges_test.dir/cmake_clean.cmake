file(REMOVE_RECURSE
  "CMakeFiles/metrics_edges_test.dir/metrics_edges_test.cc.o"
  "CMakeFiles/metrics_edges_test.dir/metrics_edges_test.cc.o.d"
  "metrics_edges_test"
  "metrics_edges_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_edges_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
