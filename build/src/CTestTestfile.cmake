# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lease")
subdirs("cache")
subdirs("store")
subdirs("net")
subdirs("coordinator")
subdirs("client")
subdirs("recovery")
subdirs("workload")
subdirs("consistency")
subdirs("replication")
subdirs("sim")
