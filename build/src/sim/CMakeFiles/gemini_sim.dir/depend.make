# Empty dependencies file for gemini_sim.
# This may be replaced when dependencies are built.
