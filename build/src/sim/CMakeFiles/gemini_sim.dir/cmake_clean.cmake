file(REMOVE_RECURSE
  "CMakeFiles/gemini_sim.dir/cluster_sim.cc.o"
  "CMakeFiles/gemini_sim.dir/cluster_sim.cc.o.d"
  "CMakeFiles/gemini_sim.dir/event_queue.cc.o"
  "CMakeFiles/gemini_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/gemini_sim.dir/metrics.cc.o"
  "CMakeFiles/gemini_sim.dir/metrics.cc.o.d"
  "libgemini_sim.a"
  "libgemini_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
