file(REMOVE_RECURSE
  "libgemini_sim.a"
)
