file(REMOVE_RECURSE
  "CMakeFiles/gemini_client.dir/gemini_client.cc.o"
  "CMakeFiles/gemini_client.dir/gemini_client.cc.o.d"
  "CMakeFiles/gemini_client.dir/recovery_state.cc.o"
  "CMakeFiles/gemini_client.dir/recovery_state.cc.o.d"
  "libgemini_client.a"
  "libgemini_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
