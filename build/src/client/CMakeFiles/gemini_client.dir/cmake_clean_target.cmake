file(REMOVE_RECURSE
  "libgemini_client.a"
)
