# Empty dependencies file for gemini_client.
# This may be replaced when dependencies are built.
