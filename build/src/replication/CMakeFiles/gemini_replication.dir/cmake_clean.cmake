file(REMOVE_RECURSE
  "CMakeFiles/gemini_replication.dir/replicated_fragment.cc.o"
  "CMakeFiles/gemini_replication.dir/replicated_fragment.cc.o.d"
  "libgemini_replication.a"
  "libgemini_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
