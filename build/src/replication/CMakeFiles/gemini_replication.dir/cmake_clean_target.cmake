file(REMOVE_RECURSE
  "libgemini_replication.a"
)
