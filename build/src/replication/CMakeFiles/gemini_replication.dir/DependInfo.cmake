
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/replicated_fragment.cc" "src/replication/CMakeFiles/gemini_replication.dir/replicated_fragment.cc.o" "gcc" "src/replication/CMakeFiles/gemini_replication.dir/replicated_fragment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gemini_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/gemini_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gemini_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lease/CMakeFiles/gemini_lease.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
