# Empty compiler generated dependencies file for gemini_replication.
# This may be replaced when dependencies are built.
