file(REMOVE_RECURSE
  "libgemini_coordinator.a"
)
