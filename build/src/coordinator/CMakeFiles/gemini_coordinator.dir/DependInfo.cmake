
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coordinator/configuration.cc" "src/coordinator/CMakeFiles/gemini_coordinator.dir/configuration.cc.o" "gcc" "src/coordinator/CMakeFiles/gemini_coordinator.dir/configuration.cc.o.d"
  "/root/repo/src/coordinator/coordinator.cc" "src/coordinator/CMakeFiles/gemini_coordinator.dir/coordinator.cc.o" "gcc" "src/coordinator/CMakeFiles/gemini_coordinator.dir/coordinator.cc.o.d"
  "/root/repo/src/coordinator/coordinator_group.cc" "src/coordinator/CMakeFiles/gemini_coordinator.dir/coordinator_group.cc.o" "gcc" "src/coordinator/CMakeFiles/gemini_coordinator.dir/coordinator_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/gemini_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/lease/CMakeFiles/gemini_lease.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
