file(REMOVE_RECURSE
  "CMakeFiles/gemini_coordinator.dir/configuration.cc.o"
  "CMakeFiles/gemini_coordinator.dir/configuration.cc.o.d"
  "CMakeFiles/gemini_coordinator.dir/coordinator.cc.o"
  "CMakeFiles/gemini_coordinator.dir/coordinator.cc.o.d"
  "CMakeFiles/gemini_coordinator.dir/coordinator_group.cc.o"
  "CMakeFiles/gemini_coordinator.dir/coordinator_group.cc.o.d"
  "libgemini_coordinator.a"
  "libgemini_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
