# Empty dependencies file for gemini_coordinator.
# This may be replaced when dependencies are built.
