# CMake generated Testfile for 
# Source directory: /root/repo/src/coordinator
# Build directory: /root/repo/build/src/coordinator
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
