file(REMOVE_RECURSE
  "libgemini_common.a"
)
