file(REMOVE_RECURSE
  "CMakeFiles/gemini_net.dir/cost_model.cc.o"
  "CMakeFiles/gemini_net.dir/cost_model.cc.o.d"
  "libgemini_net.a"
  "libgemini_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
