# Empty dependencies file for gemini_net.
# This may be replaced when dependencies are built.
