file(REMOVE_RECURSE
  "libgemini_net.a"
)
