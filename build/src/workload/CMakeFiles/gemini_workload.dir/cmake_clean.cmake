file(REMOVE_RECURSE
  "CMakeFiles/gemini_workload.dir/facebook.cc.o"
  "CMakeFiles/gemini_workload.dir/facebook.cc.o.d"
  "CMakeFiles/gemini_workload.dir/workload.cc.o"
  "CMakeFiles/gemini_workload.dir/workload.cc.o.d"
  "CMakeFiles/gemini_workload.dir/ycsb.cc.o"
  "CMakeFiles/gemini_workload.dir/ycsb.cc.o.d"
  "libgemini_workload.a"
  "libgemini_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
