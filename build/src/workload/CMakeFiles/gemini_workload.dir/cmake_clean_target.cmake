file(REMOVE_RECURSE
  "libgemini_workload.a"
)
