
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_instance.cc" "src/cache/CMakeFiles/gemini_cache.dir/cache_instance.cc.o" "gcc" "src/cache/CMakeFiles/gemini_cache.dir/cache_instance.cc.o.d"
  "/root/repo/src/cache/dirty_list.cc" "src/cache/CMakeFiles/gemini_cache.dir/dirty_list.cc.o" "gcc" "src/cache/CMakeFiles/gemini_cache.dir/dirty_list.cc.o.d"
  "/root/repo/src/cache/snapshot.cc" "src/cache/CMakeFiles/gemini_cache.dir/snapshot.cc.o" "gcc" "src/cache/CMakeFiles/gemini_cache.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gemini_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lease/CMakeFiles/gemini_lease.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
