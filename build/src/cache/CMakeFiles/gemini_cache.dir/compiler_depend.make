# Empty compiler generated dependencies file for gemini_cache.
# This may be replaced when dependencies are built.
