file(REMOVE_RECURSE
  "CMakeFiles/gemini_cache.dir/cache_instance.cc.o"
  "CMakeFiles/gemini_cache.dir/cache_instance.cc.o.d"
  "CMakeFiles/gemini_cache.dir/dirty_list.cc.o"
  "CMakeFiles/gemini_cache.dir/dirty_list.cc.o.d"
  "CMakeFiles/gemini_cache.dir/snapshot.cc.o"
  "CMakeFiles/gemini_cache.dir/snapshot.cc.o.d"
  "libgemini_cache.a"
  "libgemini_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
