file(REMOVE_RECURSE
  "libgemini_cache.a"
)
