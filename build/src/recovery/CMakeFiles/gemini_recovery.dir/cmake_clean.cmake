file(REMOVE_RECURSE
  "CMakeFiles/gemini_recovery.dir/recovery_worker.cc.o"
  "CMakeFiles/gemini_recovery.dir/recovery_worker.cc.o.d"
  "CMakeFiles/gemini_recovery.dir/write_back_flusher.cc.o"
  "CMakeFiles/gemini_recovery.dir/write_back_flusher.cc.o.d"
  "libgemini_recovery.a"
  "libgemini_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
