# Empty compiler generated dependencies file for gemini_recovery.
# This may be replaced when dependencies are built.
