file(REMOVE_RECURSE
  "libgemini_recovery.a"
)
