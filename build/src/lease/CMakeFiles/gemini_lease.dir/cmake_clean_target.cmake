file(REMOVE_RECURSE
  "libgemini_lease.a"
)
