file(REMOVE_RECURSE
  "CMakeFiles/gemini_lease.dir/lease_table.cc.o"
  "CMakeFiles/gemini_lease.dir/lease_table.cc.o.d"
  "libgemini_lease.a"
  "libgemini_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
