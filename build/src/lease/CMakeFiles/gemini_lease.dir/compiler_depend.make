# Empty compiler generated dependencies file for gemini_lease.
# This may be replaced when dependencies are built.
