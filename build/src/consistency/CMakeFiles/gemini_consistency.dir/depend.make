# Empty dependencies file for gemini_consistency.
# This may be replaced when dependencies are built.
