file(REMOVE_RECURSE
  "libgemini_consistency.a"
)
