file(REMOVE_RECURSE
  "CMakeFiles/gemini_consistency.dir/invariant_auditor.cc.o"
  "CMakeFiles/gemini_consistency.dir/invariant_auditor.cc.o.d"
  "CMakeFiles/gemini_consistency.dir/stale_read_checker.cc.o"
  "CMakeFiles/gemini_consistency.dir/stale_read_checker.cc.o.d"
  "libgemini_consistency.a"
  "libgemini_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
