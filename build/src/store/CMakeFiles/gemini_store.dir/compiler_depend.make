# Empty compiler generated dependencies file for gemini_store.
# This may be replaced when dependencies are built.
