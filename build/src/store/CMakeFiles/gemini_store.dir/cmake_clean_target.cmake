file(REMOVE_RECURSE
  "libgemini_store.a"
)
