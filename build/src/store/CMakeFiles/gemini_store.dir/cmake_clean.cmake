file(REMOVE_RECURSE
  "CMakeFiles/gemini_store.dir/data_store.cc.o"
  "CMakeFiles/gemini_store.dir/data_store.cc.o.d"
  "libgemini_store.a"
  "libgemini_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemini_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
