file(REMOVE_RECURSE
  "CMakeFiles/table3_discarded_keys.dir/table3_discarded_keys.cc.o"
  "CMakeFiles/table3_discarded_keys.dir/table3_discarded_keys.cc.o.d"
  "table3_discarded_keys"
  "table3_discarded_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_discarded_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
