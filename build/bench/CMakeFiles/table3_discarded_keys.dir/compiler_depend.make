# Empty compiler generated dependencies file for table3_discarded_keys.
# This may be replaced when dependencies are built.
