# Empty compiler generated dependencies file for fig09_invalidate_vs_overwrite.
# This may be replaced when dependencies are built.
