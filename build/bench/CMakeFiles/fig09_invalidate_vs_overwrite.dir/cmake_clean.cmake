file(REMOVE_RECURSE
  "CMakeFiles/fig09_invalidate_vs_overwrite.dir/fig09_invalidate_vs_overwrite.cc.o"
  "CMakeFiles/fig09_invalidate_vs_overwrite.dir/fig09_invalidate_vs_overwrite.cc.o.d"
  "fig09_invalidate_vs_overwrite"
  "fig09_invalidate_vs_overwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_invalidate_vs_overwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
