file(REMOVE_RECURSE
  "CMakeFiles/fig06_facebook_hit_ratio.dir/fig06_facebook_hit_ratio.cc.o"
  "CMakeFiles/fig06_facebook_hit_ratio.dir/fig06_facebook_hit_ratio.cc.o.d"
  "fig06_facebook_hit_ratio"
  "fig06_facebook_hit_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_facebook_hit_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
