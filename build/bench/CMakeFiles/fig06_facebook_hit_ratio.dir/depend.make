# Empty dependencies file for fig06_facebook_hit_ratio.
# This may be replaced when dependencies are built.
