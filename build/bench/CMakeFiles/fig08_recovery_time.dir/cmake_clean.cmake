file(REMOVE_RECURSE
  "CMakeFiles/fig08_recovery_time.dir/fig08_recovery_time.cc.o"
  "CMakeFiles/fig08_recovery_time.dir/fig08_recovery_time.cc.o.d"
  "fig08_recovery_time"
  "fig08_recovery_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
