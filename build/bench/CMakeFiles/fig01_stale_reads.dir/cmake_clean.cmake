file(REMOVE_RECURSE
  "CMakeFiles/fig01_stale_reads.dir/fig01_stale_reads.cc.o"
  "CMakeFiles/fig01_stale_reads.dir/fig01_stale_reads.cc.o.d"
  "fig01_stale_reads"
  "fig01_stale_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_stale_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
