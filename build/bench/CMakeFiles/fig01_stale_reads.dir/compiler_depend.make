# Empty compiler generated dependencies file for fig01_stale_reads.
# This may be replaced when dependencies are built.
