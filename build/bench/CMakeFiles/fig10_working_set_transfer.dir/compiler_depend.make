# Empty compiler generated dependencies file for fig10_working_set_transfer.
# This may be replaced when dependencies are built.
