file(REMOVE_RECURSE
  "CMakeFiles/fig10_working_set_transfer.dir/fig10_working_set_transfer.cc.o"
  "CMakeFiles/fig10_working_set_transfer.dir/fig10_working_set_transfer.cc.o.d"
  "fig10_working_set_transfer"
  "fig10_working_set_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_working_set_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
