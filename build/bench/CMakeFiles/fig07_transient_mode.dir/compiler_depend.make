# Empty compiler generated dependencies file for fig07_transient_mode.
# This may be replaced when dependencies are built.
