file(REMOVE_RECURSE
  "CMakeFiles/sec55_worst_case.dir/sec55_worst_case.cc.o"
  "CMakeFiles/sec55_worst_case.dir/sec55_worst_case.cc.o.d"
  "sec55_worst_case"
  "sec55_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
