# Empty dependencies file for sec55_worst_case.
# This may be replaced when dependencies are built.
