file(REMOVE_RECURSE
  "CMakeFiles/micro_cache_ops.dir/micro_cache_ops.cc.o"
  "CMakeFiles/micro_cache_ops.dir/micro_cache_ops.cc.o.d"
  "micro_cache_ops"
  "micro_cache_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cache_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
