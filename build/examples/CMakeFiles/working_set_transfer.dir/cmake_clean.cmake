file(REMOVE_RECURSE
  "CMakeFiles/working_set_transfer.dir/working_set_transfer.cpp.o"
  "CMakeFiles/working_set_transfer.dir/working_set_transfer.cpp.o.d"
  "working_set_transfer"
  "working_set_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/working_set_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
