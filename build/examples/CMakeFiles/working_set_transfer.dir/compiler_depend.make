# Empty compiler generated dependencies file for working_set_transfer.
# This may be replaced when dependencies are built.
