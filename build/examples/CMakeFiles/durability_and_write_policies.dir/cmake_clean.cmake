file(REMOVE_RECURSE
  "CMakeFiles/durability_and_write_policies.dir/durability_and_write_policies.cpp.o"
  "CMakeFiles/durability_and_write_policies.dir/durability_and_write_policies.cpp.o.d"
  "durability_and_write_policies"
  "durability_and_write_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_and_write_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
