# Empty dependencies file for durability_and_write_policies.
# This may be replaced when dependencies are built.
