// gemini_chaos: a standalone fault-injection proxy for a live geminid.
//
// Wraps src/transport/fault_proxy.h as a binary, so the seeded fault
// schedules the test suite runs in-process can also be pointed at a real
// deployment: start a geminid, start gemini_chaos in front of it, and aim
// TcpCacheBackend clients at the chaos port. Every scheduling decision is a
// pure function of (--seed, connection index, direction, frame index), so a
// failure observed behind the proxy replays bit-identically from the same
// seed and flags.
//
// Usage:
//   gemini_chaos --upstream HOST:PORT [--listen-port N] [--seed S]
//                [--delay-prob P --delay-ms-min A --delay-ms-max B]
//                [--stall-prob P --stall-ms N]
//                [--cut-prob P] [--truncate-prob P] [--reset-accept-prob P]
//                [--hold-every N --hold-count K] [--throttle-bps N]
//                [--skip-frames N] [--dir c2s|s2c|both]
//
// --dir selects which direction(s) the frame-fault flags apply to (default
// both); --skip-frames spares the first N frames of each faulted direction
// so the HELLO exchange can pass clean. SIGINT/SIGTERM print fault counters
// and exit.
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/transport/fault_proxy.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --upstream HOST:PORT [options]\n"
      << "  --listen-port N        proxy port (default 0 = ephemeral, "
         "printed)\n"
      << "  --seed S               schedule seed (default 1)\n"
      << "  --delay-prob P         per-frame delay probability [0,1]\n"
      << "  --delay-ms-min A       delay lower bound in ms (default 0)\n"
      << "  --delay-ms-max B       delay upper bound in ms (default 2)\n"
      << "  --stall-prob P         partial-frame write + stall probability\n"
      << "  --stall-ms N           mid-frame stall length (default 50)\n"
      << "  --cut-prob P           mid-frame disconnect probability\n"
      << "  --truncate-prob P      truncate-then-close probability\n"
      << "  --reset-accept-prob P  RST-on-accept probability (per "
         "connection)\n"
      << "  --hold-every N         of every N frames...\n"
      << "  --hold-count K         ...hold the last K, release as a burst\n"
      << "  --throttle-bps N       bandwidth cap in bytes/sec (0 = off)\n"
      << "  --skip-frames N        never fault the first N frames per\n"
         "                         direction (default 1: HELLO passes)\n"
      << "  --dir c2s|s2c|both     which direction the frame faults apply\n"
         "                         to (default both)\n";
}

double ParseProb(const std::string& flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 0.0 ||
      parsed > 1.0) {
    std::cerr << "gemini_chaos: invalid value '" << value << "' for " << flag
              << " (expected a probability in [0, 1])\n";
    std::exit(2);
  }
  return parsed;
}

uint64_t ParseUint(const std::string& flag, const char* value, uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed > max ||
      value[0] == '-') {
    std::cerr << "gemini_chaos: invalid value '" << value << "' for " << flag
              << " (expected an integer in [0, " << max << "])\n";
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  std::string upstream_host;
  uint16_t upstream_port = 0;
  uint16_t listen_port = 0;
  std::string dir = "both";
  gemini::FaultProxy::Options options;
  gemini::FaultProxy::DirectionProfile profile;
  profile.skip_frames = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gemini_chaos: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--upstream") {
      const std::string spec = next();
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::cerr << "gemini_chaos: --upstream expects HOST:PORT\n";
        return 2;
      }
      upstream_host = spec.substr(0, colon);
      upstream_port = static_cast<uint16_t>(
          ParseUint(arg, spec.substr(colon + 1).c_str(), 65535));
    } else if (arg == "--listen-port") {
      listen_port = static_cast<uint16_t>(ParseUint(arg, next(), 65535));
    } else if (arg == "--seed") {
      options.seed = ParseUint(arg, next(), ~uint64_t{0} - 1);
    } else if (arg == "--delay-prob") {
      profile.delay_prob = ParseProb(arg, next());
    } else if (arg == "--delay-ms-min") {
      profile.delay_min = gemini::Millis(
          static_cast<int64_t>(ParseUint(arg, next(), 60 * 1000)));
    } else if (arg == "--delay-ms-max") {
      profile.delay_max = gemini::Millis(
          static_cast<int64_t>(ParseUint(arg, next(), 60 * 1000)));
    } else if (arg == "--stall-prob") {
      profile.stall_prob = ParseProb(arg, next());
    } else if (arg == "--stall-ms") {
      profile.stall = gemini::Millis(
          static_cast<int64_t>(ParseUint(arg, next(), 10 * 60 * 1000)));
    } else if (arg == "--cut-prob") {
      profile.cut_prob = ParseProb(arg, next());
    } else if (arg == "--truncate-prob") {
      profile.truncate_prob = ParseProb(arg, next());
    } else if (arg == "--reset-accept-prob") {
      options.reset_on_accept_prob = ParseProb(arg, next());
    } else if (arg == "--hold-every") {
      profile.hold_every =
          static_cast<uint32_t>(ParseUint(arg, next(), 1 << 20));
    } else if (arg == "--hold-count") {
      profile.hold_count =
          static_cast<uint32_t>(ParseUint(arg, next(), 1 << 20));
    } else if (arg == "--throttle-bps") {
      profile.throttle_bytes_per_sec =
          ParseUint(arg, next(), uint64_t{1} << 40);
    } else if (arg == "--skip-frames") {
      profile.skip_frames =
          static_cast<uint32_t>(ParseUint(arg, next(), 1 << 20));
    } else if (arg == "--dir") {
      dir = next();
      if (dir != "c2s" && dir != "s2c" && dir != "both") {
        std::cerr << "gemini_chaos: --dir expects c2s, s2c, or both\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "gemini_chaos: unknown option " << arg << "\n";
      Usage(argv[0]);
      return 2;
    }
  }
  if (upstream_host.empty()) {
    std::cerr << "gemini_chaos: --upstream is required\n";
    Usage(argv[0]);
    return 2;
  }
  if (dir == "c2s" || dir == "both") options.client_to_server = profile;
  if (dir == "s2c" || dir == "both") options.server_to_client = profile;

  // The proxy always binds an ephemeral port; a fixed --listen-port is not
  // supported by FaultProxy (tests want collision-free ports), so reject a
  // non-zero request rather than silently ignoring it.
  if (listen_port != 0) {
    std::cerr << "gemini_chaos: --listen-port must be 0 (ephemeral; the "
                 "bound port is printed below)\n";
    return 2;
  }

  gemini::FaultProxy proxy(upstream_host, upstream_port, options);
  if (gemini::Status s = proxy.Start(); !s.ok()) {
    std::cerr << "gemini_chaos: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "gemini_chaos: seed " << options.seed << " proxying 127.0.0.1:"
            << proxy.port() << " -> " << upstream_host << ":" << upstream_port
            << " (dir " << dir << ")" << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  const gemini::FaultProxy::Stats stats = proxy.stats();
  proxy.Stop();
  std::cout << "gemini_chaos: accepted " << stats.connections_accepted
            << " (reset " << stats.connections_reset_on_accept << "), frames "
            << stats.frames_forwarded << ", bytes " << stats.bytes_forwarded
            << ", delays " << stats.delays << ", stalls " << stats.stalls
            << ", cuts " << stats.cuts << ", truncations "
            << stats.truncations << ", holds " << stats.holds << "\n";
  return 0;
}
