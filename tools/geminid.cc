// geminid: a standalone Gemini cache server.
//
// Hosts one or more CacheInstances behind sharded event loops speaking the
// wire protocol (docs/PROTOCOL.md §10) so real clients — TcpCacheBackend,
// and through it an unmodified GeminiClient — can run the paper's protocol
// over actual sockets instead of the discrete-event cost model. A client
// names the instance it wants in its HELLO; one geminid can therefore stand
// in for a whole replica set (e.g. a fragment's primary and secondary) on a
// laptop. Optional snapshot persistence closes the loop: a geminid killed
// and restarted with the same snapshot files comes back with its entries
// intact, which is exactly the persistent-cache premise Gemini's recovery
// protocol exists for.
//
// Usage:
//   geminid [--port N] [--bind ADDR] [--threads N] [--stripes S]
//           [--instance ID[:SNAPSHOT_FILE]]...   (repeatable)
//           [--capacity-mb N] [--snapshot-interval-s N] [--poll] [--verbose]
//           [--data-dir DIR]
//
// Single-instance sugar (mutually exclusive with --instance):
//   geminid [--id N] [--snapshot FILE]
//
// Durability is one of two modes. Snapshot files (--snapshot / --instance
// ID:FILE) persist periodically and on graceful shutdown only — a kill -9
// loses everything since the last sweep. --data-dir DIR turns on the WAL +
// checkpoint engine instead: each instance logs every durable mutation to
// DIR/instance_<id>/, and a killed geminid restarted on the same directory
// replays itself back to the exact pre-crash state (entries, quarantine
// drops, config ids). The two modes configure conflicting sources of truth
// for the same state, so combining them exits 2.
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain connections,
// write a final snapshot for every instance that has one configured, and
// checkpoint every --data-dir instance so restart skips log replay.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/cache/snapshot_writer.h"
#include "src/cluster/coordinator_link.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/persist/persistent_store.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --port N               TCP port (default 7311; 0 = ephemeral)\n"
      << "  --bind ADDR            bind address (default 127.0.0.1)\n"
      << "  --instance ID[:FILE]   host instance ID, optionally persisted to\n"
         "                         snapshot FILE; repeatable, first one is\n"
         "                         the default for version-1 clients\n"
      << "  --capacity-mb N        per-instance LRU byte budget in MiB\n"
         "                         (default 0 = unbounded)\n"
      << "  --threads N            event-loop shards (default 0 = one per\n"
         "                         hardware thread; 1 = single-threaded)\n"
      << "  --stripes S            lock stripes per instance (default 0 =\n"
         "                         auto: 1 for one loop, else 4x the loop\n"
         "                         count; rounded up to a power of two)\n"
      << "  --id N                 single-instance sugar for --instance N\n"
      << "  --snapshot FILE        single-instance sugar: snapshot file for\n"
         "                         the --id instance\n"
      << "  --snapshot-interval-s N  write every snapshot file every N "
         "seconds\n"
      << "  --data-dir DIR         durable WAL + checkpoint engine: each\n"
         "                         instance persists to DIR/instance_<id>/\n"
         "                         and replays it on startup; survives\n"
         "                         kill -9 (mutually exclusive with\n"
         "                         snapshot files)\n"
      << "  --drain-timeout-ms N   how long a graceful shutdown waits for\n"
         "                         pending responses to drain (default "
      << gemini::TransportServer::Options().drain_timeout_ms << ")\n"
      << "  --idle-timeout-ms N    reap connections stuck before HELLO or\n"
         "                         mid-frame after N ms; 0 disables "
         "(default "
      << gemini::TransportServer::Options().idle_timeout_ms << ")\n"
      << "  --coordinator HOST:PORT[,HOST:PORT...]\n"
         "                         register with a geminicoordd control plane\n"
         "                         and stream heartbeats; one link per hosted\n"
         "                         instance. With a replicated coordinator\n"
         "                         group, list every endpoint (master and\n"
         "                         shadows) — the link rotates on failure\n"
      << "  --advertise HOST:PORT  data-plane address the coordinator should\n"
         "                         dial back (default: the bound address;\n"
         "                         set this when clients reach the server\n"
         "                         through a proxy but the coordinator must\n"
         "                         not)\n"
      << "  --heartbeat-interval-ms N  coordinator heartbeat cadence\n"
         "                         (default 100)\n"
      << "  --io-backend NAME      event backend: auto (default), uring,\n"
         "                         epoll, or poll; auto picks io_uring when\n"
         "                         the kernel supports it, else epoll\n"
      << "  --poll                 legacy alias for --io-backend poll\n"
      << "  --verbose              info-level logging\n";
}

/// Parses a non-negative integer flag value in [0, max]. Exits with the
/// offending flag and value on anything else — atoi's silent 0 turned
/// "--port 8O80" into an ephemeral port, which is exactly the kind of
/// operator surprise a server binary must not have.
uint64_t ParseUint(const std::string& flag, const char* value, uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed > max ||
      value[0] == '-') {
    std::cerr << "geminid: invalid value '" << value << "' for " << flag
              << " (expected an integer in [0, " << max << "])\n";
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

struct InstanceSpec {
  gemini::InstanceId id = 0;
  std::string snapshot_path;
};

/// Parses "HOST:PORT" (the last ':' splits, so bare IPv4/hostnames only).
void ParseHostPort(const std::string& flag, const char* value,
                   std::string* host, uint16_t* port) {
  const std::string spec = value;
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    std::cerr << "geminid: invalid value '" << value << "' for " << flag
              << " (expected HOST:PORT)\n";
    std::exit(2);
  }
  *host = spec.substr(0, colon);
  *port = static_cast<uint16_t>(
      ParseUint(flag, spec.substr(colon + 1).c_str(), 65535));
}

/// Parses "HOST:PORT[,HOST:PORT...]" — a replicated coordinator group is
/// named by its full ordered endpoint list (docs/PROTOCOL.md §12.7).
std::vector<gemini::CoordinatorLink::Endpoint> ParseEndpointList(
    const std::string& flag, const char* value) {
  std::vector<gemini::CoordinatorLink::Endpoint> out;
  const std::string spec = value;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    gemini::CoordinatorLink::Endpoint ep;
    ParseHostPort(flag, spec.substr(begin, end - begin).c_str(), &ep.host,
                  &ep.port);
    out.push_back(std::move(ep));
    begin = end + 1;
  }
  return out;
}

/// Parses "ID" or "ID:SNAPSHOT_FILE".
InstanceSpec ParseInstanceSpec(const std::string& flag, const char* value) {
  const std::string spec = value;
  const size_t colon = spec.find(':');
  const std::string id_part = spec.substr(0, colon);
  InstanceSpec out;
  out.id = static_cast<gemini::InstanceId>(
      ParseUint(flag, id_part.c_str(), gemini::kInvalidInstance - 1));
  if (colon != std::string::npos) {
    out.snapshot_path = spec.substr(colon + 1);
    if (out.snapshot_path.empty()) {
      std::cerr << "geminid: invalid value '" << value << "' for " << flag
                << " (empty snapshot path after ':')\n";
      std::exit(2);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7311;
  std::string bind_address = "127.0.0.1";
  uint64_t capacity_mb = 0;
  uint64_t snapshot_interval_s = 0;
  uint64_t threads = 0;  // 0 = auto (hardware_concurrency)
  uint64_t stripes = 0;  // 0 = auto (derived from the loop count)
  int64_t drain_timeout_ms = -1;  // -1 = server default
  int64_t idle_timeout_ms = -1;   // -1 = server default
  bool use_poll = false;
  gemini::TransportServer::IoBackend io_backend =
      gemini::TransportServer::IoBackend::kAuto;
  std::string data_dir;
  std::vector<gemini::CoordinatorLink::Endpoint> coordinators;
  std::string advertise_host;
  uint16_t advertise_port = 0;
  uint64_t heartbeat_interval_ms = 100;
  std::vector<InstanceSpec> specs;
  // Single-instance sugar, folded into `specs` after parsing.
  bool saw_single_flags = false;
  InstanceSpec single;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "geminid: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(ParseUint(arg, next(), 65535));
    } else if (arg == "--bind") {
      bind_address = next();
    } else if (arg == "--instance") {
      specs.push_back(ParseInstanceSpec(arg, next()));
    } else if (arg == "--id") {
      single.id = static_cast<gemini::InstanceId>(
          ParseUint(arg, next(), gemini::kInvalidInstance - 1));
      saw_single_flags = true;
    } else if (arg == "--capacity-mb") {
      capacity_mb = ParseUint(arg, next(), uint64_t{1} << 40);
    } else if (arg == "--threads") {
      threads = ParseUint(arg, next(), 64);
    } else if (arg == "--stripes") {
      stripes = ParseUint(arg, next(), 256);
    } else if (arg == "--snapshot") {
      single.snapshot_path = next();
      saw_single_flags = true;
    } else if (arg == "--data-dir") {
      data_dir = next();
      if (data_dir.empty()) {
        std::cerr << "geminid: --data-dir requires a non-empty directory\n";
        return 2;
      }
    } else if (arg == "--coordinator") {
      coordinators = ParseEndpointList(arg, next());
    } else if (arg == "--advertise") {
      ParseHostPort(arg, next(), &advertise_host, &advertise_port);
    } else if (arg == "--heartbeat-interval-ms") {
      heartbeat_interval_ms = ParseUint(arg, next(), 60 * 1000);
      if (heartbeat_interval_ms == 0) {
        std::cerr << "geminid: --heartbeat-interval-ms must be positive\n";
        return 2;
      }
    } else if (arg == "--snapshot-interval-s") {
      snapshot_interval_s = ParseUint(arg, next(), uint64_t{1} << 31);
    } else if (arg == "--drain-timeout-ms") {
      drain_timeout_ms =
          static_cast<int64_t>(ParseUint(arg, next(), 10 * 60 * 1000));
    } else if (arg == "--idle-timeout-ms") {
      idle_timeout_ms =
          static_cast<int64_t>(ParseUint(arg, next(), 24LL * 3600 * 1000));
    } else if (arg == "--io-backend") {
      const std::string name = next();
      if (name == "auto") {
        io_backend = gemini::TransportServer::IoBackend::kAuto;
      } else if (name == "uring") {
        io_backend = gemini::TransportServer::IoBackend::kUring;
      } else if (name == "epoll") {
        io_backend = gemini::TransportServer::IoBackend::kEpoll;
      } else if (name == "poll") {
        io_backend = gemini::TransportServer::IoBackend::kPoll;
      } else {
        std::cerr << "geminid: invalid value '" << name
                  << "' for --io-backend (expected auto, uring, epoll, or "
                     "poll)\n";
        return 2;
      }
    } else if (arg == "--poll") {
      use_poll = true;
    } else if (arg == "--verbose") {
      gemini::LogState::SetLevel(gemini::LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "geminid: unknown option " << arg << "\n";
      Usage(argv[0]);
      return 2;
    }
  }

  if (saw_single_flags && !specs.empty()) {
    std::cerr << "geminid: --id/--snapshot are single-instance sugar and "
                 "cannot be combined with --instance\n";
    return 2;
  }
  if (specs.empty()) specs.push_back(single);  // Defaults to instance 0.

  if (coordinators.empty() && !advertise_host.empty()) {
    std::cerr << "geminid: --advertise only makes sense with --coordinator\n";
    return 2;
  }

  if (!data_dir.empty()) {
    for (const InstanceSpec& spec : specs) {
      if (!spec.snapshot_path.empty()) {
        std::cerr << "geminid: --data-dir and snapshot files (--snapshot / "
                     "--instance ID:FILE) are conflicting durability modes; "
                     "pick one\n";
        return 2;
      }
    }
    if (snapshot_interval_s != 0) {
      std::cerr << "geminid: --snapshot-interval-s has no effect with "
                   "--data-dir (the WAL engine persists continuously)\n";
      return 2;
    }
  }

  // Resolve --threads 0 here (not in the server) because the stripe default
  // derives from it: roughly 4 stripes per event loop keeps concurrent
  // shards off each other's locks, while one loop keeps the historical
  // single-mutex, global-LRU behavior.
  uint32_t effective_loops = threads == 0
                                 ? std::max(1u, std::thread::hardware_concurrency())
                                 : static_cast<uint32_t>(threads);
  effective_loops = std::min(effective_loops, 64u);
  const uint32_t effective_stripes =
      stripes != 0 ? static_cast<uint32_t>(stripes)
                   : (effective_loops == 1 ? 1
                                           : std::min(64u, 4 * effective_loops));

  gemini::CacheInstance::Options cache_options;
  cache_options.capacity_bytes = capacity_mb << 20;
  cache_options.num_stripes = effective_stripes;
  std::vector<std::unique_ptr<gemini::CacheInstance>> instances;
  std::vector<std::unique_ptr<gemini::PersistentStore>> stores;
  gemini::InstanceRegistry registry;
  std::vector<gemini::SnapshotWriter::Target> snapshot_targets;
  for (const InstanceSpec& spec : specs) {
    gemini::CacheInstance::Options instance_options = cache_options;
    gemini::PersistentStore* store = nullptr;
    if (!data_dir.empty()) {
      stores.push_back(std::make_unique<gemini::PersistentStore>(
          data_dir + "/instance_" + std::to_string(spec.id)));
      store = stores.back().get();
      instance_options.persistence = store;
    }
    instances.push_back(std::make_unique<gemini::CacheInstance>(
        spec.id, &gemini::SystemClock::Global(), instance_options));
    gemini::CacheInstance& instance = *instances.back();

    if (store != nullptr) {
      // Replays checkpoint + WAL tail into the cold instance before the
      // server accepts a single request. Fails closed on damaged history.
      if (gemini::Status s = store->Open(instance); !s.ok()) {
        std::cerr << "geminid: refusing damaged data dir " << store->dir()
                  << ": " << s.ToString() << "\n";
        return 1;
      }
      std::cout << "geminid: instance " << spec.id << " restored "
                << store->stats().restored_entries << " entries ("
                << store->stats().replayed_records << " wal records, "
                << store->stats().quarantine_drops
                << " quarantine drops) from " << store->dir() << "\n";
    }

    if (!spec.snapshot_path.empty()) {
      gemini::Status s =
          gemini::Snapshot::LoadFromFile(instance, spec.snapshot_path);
      if (s.ok()) {
        std::cout << "geminid: instance " << spec.id << " restored "
                  << instance.stats().entry_count << " entries from "
                  << spec.snapshot_path << "\n";
      } else if (s.code() == gemini::Code::kNotFound) {
        std::cout << "geminid: instance " << spec.id << " has no snapshot at "
                  << spec.snapshot_path << ", starting empty\n";
      } else {
        // Fail closed: a torn snapshot must not silently serve stale data.
        std::cerr << "geminid: refusing corrupt snapshot "
                  << spec.snapshot_path << ": " << s.ToString() << "\n";
        return 1;
      }
      snapshot_targets.push_back({&instance, spec.snapshot_path});
    }

    gemini::InstanceOptions iopts;
    iopts.snapshot_path = spec.snapshot_path;
    if (store != nullptr) {
      // Surface the durability engine's counters through kStats alongside
      // the server/cache gauges (all named persist.* to keep the namespace
      // flat). The lambda outlives the loop; `stores` outlives the server.
      iopts.extra_stats = [store] {
        const gemini::PersistentStore::Stats ps = store->stats();
        return std::vector<std::pair<std::string, uint64_t>>{
            {"persist.appended_records", ps.appended_records},
            {"persist.appended_bytes", ps.appended_bytes},
            {"persist.journal_commits", ps.fsyncs},
            {"persist.checkpoints", ps.checkpoints},
            {"persist.replayed_segments", ps.replayed_segments},
            {"persist.replayed_records", ps.replayed_records},
            {"persist.replay_micros", ps.replay_micros},
            {"persist.restored_entries", ps.restored_entries},
            {"persist.quarantine_drops", ps.quarantine_drops},
            {"persist.torn_tail_bytes", ps.torn_tail_bytes},
            {"persist.checkpoint_lag_bytes", ps.checkpoint_lag_bytes},
        };
      };
    }
    if (gemini::Status s = registry.Add(&instance, iopts); !s.ok()) {
      std::cerr << "geminid: " << s.ToString() << "\n";
      return 2;
    }
  }

  gemini::TransportServer::Options options;
  options.bind_address = bind_address;
  options.port = port;
  options.num_loops = effective_loops;
  options.use_poll_fallback = use_poll;
  options.io_backend = io_backend;
  if (drain_timeout_ms >= 0) {
    options.drain_timeout_ms = static_cast<int>(drain_timeout_ms);
  }
  if (idle_timeout_ms >= 0) {
    options.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
  }
  gemini::TransportServer server(std::move(registry), options);
  if (gemini::Status s = server.Start(); !s.ok()) {
    std::cerr << "geminid: " << s.ToString() << "\n";
    return 1;
  }
  // Install the handlers before announcing readiness: anything supervising
  // geminid (an init system, a test harness) may take the banner as its cue
  // to signal, and a SIGTERM landing in the gap would kill us un-drained.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  {
    std::string ids;
    for (const InstanceSpec& spec : specs) {
      if (!ids.empty()) ids += ",";
      ids += std::to_string(spec.id);
    }
    std::cout << "geminid: instances " << ids << " serving on " << bind_address
              << ":" << server.port() << " (io backend: "
              << server.io_backend_name() << ")" << std::endl;
  }

  // One coordinator link per hosted instance: the control plane tracks
  // instances, not processes, so a geminid standing in for several replicas
  // registers (and heartbeats) each of them independently. Created after
  // Start() because an ephemeral --port 0 advertise address needs the real
  // bound port.
  std::vector<std::unique_ptr<gemini::CoordinatorLink>> links;
  if (!coordinators.empty()) {
    for (const auto& instance : instances) {
      gemini::CacheInstance* cache = instance.get();
      gemini::CoordinatorLink::Options lopts;
      lopts.coordinators = coordinators;
      lopts.instance = cache->id();
      lopts.advertise_host =
          advertise_host.empty() ? bind_address : advertise_host;
      lopts.advertise_port =
          advertise_port != 0 ? advertise_port : server.port();
      lopts.heartbeat_interval =
          gemini::Millis(static_cast<double>(heartbeat_interval_ms));
      lopts.on_config_id = [cache](gemini::ConfigId latest) {
        cache->ObserveConfigId(latest);
      };
      links.push_back(std::make_unique<gemini::CoordinatorLink>(lopts));
      links.back()->Start();
    }
    std::string group;
    for (const auto& ep : coordinators) {
      if (!group.empty()) group += ",";
      group += ep.host + ":" + std::to_string(ep.port);
    }
    std::cout << "geminid: heartbeating to coordinator " << group
              << std::endl;
  }

  gemini::SnapshotWriter::Options writer_options;
  writer_options.interval =
      gemini::Seconds(static_cast<double>(snapshot_interval_s));
  gemini::SnapshotWriter writer(snapshot_targets, writer_options);
  if (gemini::Status s = writer.Start(); !s.ok()) {
    std::cerr << "geminid: " << s.ToString() << "\n";
    server.Stop();
    return 1;
  }

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "geminid: shutting down\n";
  // Order matters: silence the coordinator links (so the control plane sees
  // missed beats, not RSTs from a half-dead process), stop accepting work,
  // stop the periodic writer (an in-flight sweep completes, never tears),
  // then write the final authoritative snapshots with everything quiesced.
  for (auto& link : links) link->Stop();
  server.Stop();
  writer.Stop();
  if (!snapshot_targets.empty()) {
    if (gemini::Status s = writer.WriteAll(); !s.ok()) {
      std::cerr << "geminid: final snapshot failed: " << s.ToString() << "\n";
      return 1;
    }
    for (const auto& target : snapshot_targets) {
      std::cout << "geminid: wrote " << target.instance->stats().entry_count
                << " entries to " << target.path << "\n";
    }
  }
  // A shutdown checkpoint is an optimization, not a durability requirement
  // (the WAL already holds everything): it makes the next boot replay one
  // snapshot instead of the whole log. Still fail loudly if it breaks.
  for (size_t i = 0; i < stores.size(); ++i) {
    gemini::PersistentStore& store = *stores[i];
    if (gemini::Status s = store.error(); !s.ok()) {
      std::cerr << "geminid: instance " << instances[i]->id()
                << " wal error during serving: " << s.ToString() << "\n";
      return 1;
    }
    if (gemini::Status s = store.Checkpoint(); !s.ok()) {
      std::cerr << "geminid: final checkpoint failed: " << s.ToString()
                << "\n";
      return 1;
    }
    std::cout << "geminid: checkpointed "
              << instances[i]->stats().entry_count << " entries to "
              << store.dir() << "\n";
    store.Close();
  }
  return 0;
}
