// geminid: a standalone Gemini cache instance server.
//
// Hosts one CacheInstance behind the wire protocol (docs/PROTOCOL.md §10) so
// real clients — TcpCacheBackend, and through it an unmodified GeminiClient —
// can run the paper's protocol over actual sockets instead of the
// discrete-event cost model. Optional snapshot persistence closes the loop:
// a geminid killed and restarted with the same --snapshot file comes back
// with its entries intact, which is exactly the persistent-cache premise
// Gemini's recovery protocol exists for.
//
// Usage:
//   geminid [--port N] [--bind ADDR] [--id N] [--capacity-mb N]
//           [--snapshot FILE [--snapshot-interval-s N]] [--poll] [--verbose]
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain connections,
// write a final snapshot when one is configured.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/transport/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --port N               TCP port (default 7311; 0 = ephemeral)\n"
      << "  --bind ADDR            bind address (default 127.0.0.1)\n"
      << "  --id N                 this instance's InstanceId (default 0)\n"
      << "  --capacity-mb N        LRU byte budget in MiB (default 0 = "
         "unbounded)\n"
      << "  --snapshot FILE        load FILE at boot, write it at shutdown\n"
      << "  --snapshot-interval-s N  also write FILE every N seconds\n"
      << "  --poll                 use the portable poll(2) loop, not epoll\n"
      << "  --verbose              info-level logging\n";
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7311;
  std::string bind_address = "127.0.0.1";
  gemini::InstanceId instance_id = 0;
  uint64_t capacity_mb = 0;
  std::string snapshot_path;
  long snapshot_interval_s = 0;
  bool use_poll = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--bind") {
      bind_address = next();
    } else if (arg == "--id") {
      instance_id = static_cast<gemini::InstanceId>(std::atoi(next()));
    } else if (arg == "--capacity-mb") {
      capacity_mb = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--snapshot") {
      snapshot_path = next();
    } else if (arg == "--snapshot-interval-s") {
      snapshot_interval_s = std::atol(next());
    } else if (arg == "--poll") {
      use_poll = true;
    } else if (arg == "--verbose") {
      gemini::LogState::SetLevel(gemini::LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      Usage(argv[0]);
      return 2;
    }
  }

  gemini::CacheInstance::Options cache_options;
  cache_options.capacity_bytes = capacity_mb << 20;
  gemini::CacheInstance instance(instance_id,
                                 &gemini::SystemClock::Global(),
                                 cache_options);

  if (!snapshot_path.empty()) {
    gemini::Status s = gemini::Snapshot::LoadFromFile(instance, snapshot_path);
    if (s.ok()) {
      std::cout << "geminid: restored " << instance.stats().entry_count
                << " entries from " << snapshot_path << "\n";
    } else if (s.code() == gemini::Code::kNotFound) {
      std::cout << "geminid: no snapshot at " << snapshot_path
                << ", starting empty\n";
    } else {
      // Fail closed: a torn snapshot must not silently serve stale data.
      std::cerr << "geminid: refusing corrupt snapshot " << snapshot_path
                << ": " << s.ToString() << "\n";
      return 1;
    }
  }

  gemini::TransportServer::Options options;
  options.bind_address = bind_address;
  options.port = port;
  options.use_poll_fallback = use_poll;
  options.snapshot_path = snapshot_path;
  gemini::TransportServer server(&instance, options);
  if (gemini::Status s = server.Start(); !s.ok()) {
    std::cerr << "geminid: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "geminid: instance " << instance_id << " serving on "
            << bind_address << ":" << server.port() << std::endl;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const gemini::Timestamp interval =
      gemini::Seconds(static_cast<double>(snapshot_interval_s));
  gemini::Timestamp last_snapshot = gemini::SystemClock::Global().Now();
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!snapshot_path.empty() && interval > 0) {
      const gemini::Timestamp now = gemini::SystemClock::Global().Now();
      if (now - last_snapshot >= interval) {
        last_snapshot = now;
        gemini::Status s =
            gemini::Snapshot::WriteToFile(instance, snapshot_path);
        if (!s.ok()) {
          std::cerr << "geminid: periodic snapshot failed: " << s.ToString()
                    << "\n";
        }
      }
    }
  }

  std::cout << "geminid: shutting down\n";
  server.Stop();
  if (!snapshot_path.empty()) {
    gemini::Status s = gemini::Snapshot::WriteToFile(instance, snapshot_path);
    if (!s.ok()) {
      std::cerr << "geminid: final snapshot failed: " << s.ToString() << "\n";
      return 1;
    }
    std::cout << "geminid: wrote " << instance.stats().entry_count
              << " entries to " << snapshot_path << "\n";
  }
  return 0;
}
