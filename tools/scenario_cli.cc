// scenario_cli: run a custom Gemini failure scenario from the command line
// and print per-second CSV series — the knob-turning tool for downstream
// users (the figure benches hard-code the paper's parameters; this exposes
// them).
//
//   ./build/tools/scenario_cli --policy=gemini-ow --records=100000
//       --instances=5 --fragments=1000 --threads=40 --updates=5
//       --fail=0:20:10 --fail=1:60:5 --coordfail=30:5 --evolve=100
//       --seconds=120 --seed=7        (single command line)
//
// Output: CSV with one row per virtual second: throughput, overall hit
// ratio, per-failed-instance hit ratio, p90 read latency, stale reads.
// A summary block at the end reports recovery metrics per failed instance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cluster_sim.h"
#include "src/workload/ycsb.h"

namespace gemini {
namespace {

struct FailureSpec {
  InstanceId instance = 0;
  double at = 0;
  double down_for = 0;
};

struct CliOptions {
  std::string policy = "gemini-ow";
  uint64_t records = 100'000;
  size_t instances = 5;
  size_t fragments = 1000;
  size_t threads = 40;
  double updates_pct = 5;
  int evolve = 0;  // 0 | 20 | 100
  double seconds = 60;
  uint64_t seed = 42;
  bool crash = false;
  std::vector<FailureSpec> failures;
  double coord_fail_at = -1;
  double coord_failover = 2;
};

RecoveryPolicy ParsePolicy(const std::string& name) {
  if (name == "volatile") return RecoveryPolicy::VolatileCache();
  if (name == "stale") return RecoveryPolicy::StaleCache();
  if (name == "gemini-i") return RecoveryPolicy::GeminiI();
  if (name == "gemini-o") return RecoveryPolicy::GeminiO();
  if (name == "gemini-iw") return RecoveryPolicy::GeminiIW();
  if (name == "gemini-ow") return RecoveryPolicy::GeminiOW();
  std::fprintf(stderr, "unknown --policy=%s (volatile|stale|gemini-{i,o,iw,ow})\n",
               name.c_str());
  std::exit(2);
}

bool ParseArg(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  *out = arg + n;
  return true;
}

CliOptions Parse(int argc, char** argv) {
  CliOptions o;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseArg(argv[i], "--policy=", &v)) {
      o.policy = v;
    } else if (ParseArg(argv[i], "--records=", &v)) {
      o.records = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--instances=", &v)) {
      o.instances = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--fragments=", &v)) {
      o.fragments = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--threads=", &v)) {
      o.threads = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseArg(argv[i], "--updates=", &v)) {
      o.updates_pct = std::strtod(v.c_str(), nullptr);
    } else if (ParseArg(argv[i], "--evolve=", &v)) {
      o.evolve = std::atoi(v.c_str());
    } else if (ParseArg(argv[i], "--seconds=", &v)) {
      o.seconds = std::strtod(v.c_str(), nullptr);
    } else if (ParseArg(argv[i], "--seed=", &v)) {
      o.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--crash") == 0) {
      o.crash = true;
    } else if (ParseArg(argv[i], "--fail=", &v)) {
      // --fail=<instance>:<at_seconds>:<duration_seconds>
      FailureSpec f;
      if (std::sscanf(v.c_str(), "%u:%lf:%lf", &f.instance, &f.at,
                      &f.down_for) != 3) {
        std::fprintf(stderr, "bad --fail=%s (want i:at:dur)\n", v.c_str());
        std::exit(2);
      }
      o.failures.push_back(f);
    } else if (ParseArg(argv[i], "--coordfail=", &v)) {
      if (std::sscanf(v.c_str(), "%lf:%lf", &o.coord_fail_at,
                      &o.coord_failover) != 2) {
        std::fprintf(stderr, "bad --coordfail=%s (want at:failover)\n",
                     v.c_str());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      std::exit(2);
    }
  }
  return o;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) {
  using namespace gemini;
  const CliOptions cli = Parse(argc, argv);

  YcsbWorkload::Options wo;
  wo.num_records = cli.records;
  wo.update_fraction = cli.updates_pct / 100.0;
  wo.evolution = cli.evolve == 100 ? YcsbWorkload::Evolution::kSwitch100
                 : cli.evolve == 20 ? YcsbWorkload::Evolution::kSwitch20
                                    : YcsbWorkload::Evolution::kStatic;
  SimOptions so;
  so.num_instances = cli.instances;
  so.num_fragments = cli.fragments;
  so.closed_loop_threads = cli.threads;
  so.policy = ParsePolicy(cli.policy);
  so.crash_failures = cli.crash;
  so.seed = cli.seed;
  ClusterSim sim(so, std::make_shared<YcsbWorkload>(wo));

  double first_failure = -1;
  for (const auto& f : cli.failures) {
    sim.ScheduleFailure(f.instance, Seconds(f.at), Seconds(f.down_for));
    if (first_failure < 0 || f.at < first_failure) first_failure = f.at;
  }
  if (cli.evolve != 0 && first_failure >= 0) {
    sim.SchedulePhaseChange(Seconds(first_failure), 1);
  }
  if (cli.coord_fail_at >= 0) {
    sim.ScheduleCoordinatorFailure(Seconds(cli.coord_fail_at),
                                   Seconds(cli.coord_failover));
  }
  sim.Run(Seconds(cli.seconds));

  // ---- CSV ---------------------------------------------------------------------
  std::printf("second,throughput,hit_ratio,p90_read_us,stale_reads");
  for (const auto& f : cli.failures) {
    std::printf(",hit_instance_%u", f.instance);
  }
  std::printf("\n");
  const auto& m = sim.metrics();
  const auto hit = m.overall_hit.Ratios();
  const auto p90 = m.read_latency.Percentiles(0.90);
  const auto& stale = m.stale.stale_per_interval().buckets();
  const auto seconds = static_cast<size_t>(cli.seconds);
  for (size_t s = 0; s < seconds; ++s) {
    std::printf("%zu,%llu,%.4f,%.0f,%llu", s,
                (unsigned long long)m.ops.At(Seconds((double)s)),
                s < hit.size() ? hit[s] : 0.0,
                s < p90.size() ? p90[s] : 0.0,
                (unsigned long long)(s < stale.size() ? stale[s] : 0));
    for (const auto& f : cli.failures) {
      std::printf(",%.4f", m.InstanceHitBetween(f.instance, s, s + 1));
    }
    std::printf("\n");
  }

  std::fprintf(stderr, "\n# policy=%s stale_total=%llu\n", cli.policy.c_str(),
               (unsigned long long)m.stale.total_stale());
  for (const auto& rec : sim.recoveries()) {
    std::fprintf(stderr,
                 "# instance %u: failed@%.1fs recovered@%.1fs "
                 "recovery_duration=%.1fs restore_hit_ratio=%.1fs "
                 "prefailure_hit=%.3f\n",
                 rec.instance, ToSeconds(rec.failed_at),
                 ToSeconds(rec.recovered_at),
                 sim.RecoveryDurationSeconds(rec.instance),
                 sim.SecondsToRestoreHitRatio(rec.instance),
                 rec.prefailure_hit_ratio);
  }
  return 0;
}
