// geminicoordd: the Gemini coordinator as a standalone server.
//
// Hosts a CoordinatorReplica — one member of a replicated coordinator group
// (master + shadows, Section 2.1; docs/PROTOCOL.md §12.7) — behind a
// coordinator-only TransportServer (empty registry: data ops answer
// kUnavailable, kCoord* ops run the control plane; docs/PROTOCOL.md §12).
// geminids started with --coordinator HOST:PORT[,HOST:PORT...] register
// here and stream heartbeats; clients watch configurations with
// kCoordConfigWatch and receive kPushConfig frames on every Rejig.
//
// Run alone (no --peers) the process promotes itself immediately — the
// classic single-coordinator deployment. Run with --peers (the group's
// member list — including this process is harmless, its own echoed claim
// is ignored) and a unique --rank, it boots as a shadow: the master
// replicates its full CoordinatorState here after every mutation, and if
// the master's sync beat goes silent for the rank-staggered election delay,
// this replica promotes itself (ImportState + registration grace window)
// and answers kCoord* ops from then on; shadows answer kNotMaster, which
// tells geminids and clients to redial the next endpoint in their list.
//
// The cluster is sized up front (--cluster-size): instance ids [0, N) are
// the valid slots, fragment i starts on instance i % N. A slot that never
// registers simply stays down — the coordinator publishes nothing into it —
// so starting geminicoordd before any geminid is the normal boot order.
//
// Networked fragment leases default to seconds, not the in-process hour: a
// partitioned coordinator must fail safe, with instances refusing IQ traffic
// once their grants lapse (--lease-ttl-ms).
//
// Usage:
//   geminicoordd --cluster-size N [--fragments M] [--port P] [--bind ADDR]
//                [--peers HOST:PORT[,HOST:PORT...]] [--rank R]
//                [--sync-interval-ms N] [--election-timeout-ms N]
//                [--heartbeat-interval-ms N] [--miss-threshold K]
//                [--lease-ttl-ms N] [--policy NAME] [--threads N] [--poll]
//                [--verbose]
//
// --policy defaults to gemini-ow (the library's default): recovery workers
// run the working set transfer themselves — streaming the secondary's hot
// keys back into the recovered primary via kWorkingSetScan — and report its
// termination, so a networked cluster needs no cooperating clients for +W to
// complete. Pass --policy gemini-o to fall back to dirty-list-only recovery.
//
// SIGINT/SIGTERM shut down gracefully: the ticker halts (no more failure
// verdicts or pushes), then the server drains.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/coordinator_replica.h"
#include "src/common/clock.h"
#include "src/coordinator/policy.h"
#include "src/common/logging.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

void Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --cluster-size N [options]\n"
      << "  --cluster-size N       instance slots [0, N); required\n"
      << "  --fragments M          fragment count (default: cluster size)\n"
      << "  --port P               TCP port (default 7411; 0 = ephemeral)\n"
      << "  --bind ADDR            bind address (default 127.0.0.1)\n"
      << "  --heartbeat-interval-ms N  expected beat cadence (default 100)\n"
      << "  --miss-threshold K     consecutive missed beats before an\n"
         "                         instance is failed over (default 3)\n"
      << "  --lease-ttl-ms N       fragment lease lifetime granted to\n"
         "                         instances (default 5000; renewed at ~1/3)\n"
      << "  --peers LIST           comma-separated HOST:PORT of the\n"
         "                         coordinator group members (may include\n"
         "                         this process; self entries are ignored);\n"
         "                         boots this process as a shadow replica\n"
      << "  --rank R               election rank, unique per group member\n"
         "                         (default 0; lowest live rank wins)\n"
      << "  --sync-interval-ms N   master->shadow state sync beat\n"
         "                         (default: heartbeat interval)\n"
      << "  --election-timeout-ms N  base election delay; a shadow promotes\n"
         "                         after (rank+1) times this with no master\n"
         "                         sync (default: 6x sync interval)\n"
      << "  --policy NAME          recovery policy: gemini-ow (default),\n"
         "                         gemini-o, gemini-i, gemini-iw, stale,\n"
         "                         volatile; +W transfers are streamed by\n"
         "                         the recovery workers (gemini_cluster)\n"
      << "  --threads N            event-loop shards (default 1; the control\n"
         "                         plane is not the data path)\n"
      << "  --poll                 use the portable poll(2) loop, not epoll\n"
      << "  --verbose              info-level logging\n";
}

/// Parses a non-negative integer flag value in [0, max]; exits 2 on anything
/// else (same fail-closed contract as geminid's flag parsing).
uint64_t ParseUint(const std::string& flag, const char* value, uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed > max ||
      value[0] == '-') {
    std::cerr << "geminicoordd: invalid value '" << value << "' for " << flag
              << " (expected an integer in [0, " << max << "])\n";
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

/// Parses "HOST:PORT[,HOST:PORT...]" into peer endpoints; exits 2 on
/// malformed input (same fail-closed contract as the other flags).
std::vector<gemini::CoordinatorReplica::PeerEndpoint> ParsePeers(
    const std::string& list) {
  std::vector<gemini::CoordinatorReplica::PeerEndpoint> out;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(start, comma - start);
    const size_t colon = item.rfind(':');
    if (item.empty() || colon == std::string::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      std::cerr << "geminicoordd: malformed --peers entry '" << item
                << "' (expected HOST:PORT)\n";
      std::exit(2);
    }
    out.push_back(
        {item.substr(0, colon),
         static_cast<uint16_t>(
             ParseUint("--peers", item.c_str() + colon + 1, 65535))});
    start = comma + 1;
  }
  return out;
}

gemini::RecoveryPolicy ParsePolicy(const std::string& name) {
  if (name == "gemini-o") return gemini::RecoveryPolicy::GeminiO();
  if (name == "gemini-i") return gemini::RecoveryPolicy::GeminiI();
  if (name == "gemini-ow") return gemini::RecoveryPolicy::GeminiOW();
  if (name == "gemini-iw") return gemini::RecoveryPolicy::GeminiIW();
  if (name == "stale") return gemini::RecoveryPolicy::StaleCache();
  if (name == "volatile") return gemini::RecoveryPolicy::VolatileCache();
  std::cerr << "geminicoordd: unknown --policy '" << name
            << "' (expected gemini-o, gemini-i, gemini-ow, gemini-iw, "
               "stale or volatile)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 7411;
  std::string bind_address = "127.0.0.1";
  uint64_t cluster_size = 0;
  uint64_t fragments = 0;
  uint64_t heartbeat_interval_ms = 100;
  uint64_t miss_threshold = 3;
  uint64_t lease_ttl_ms = 5000;
  uint64_t threads = 1;
  uint64_t rank = 0;
  uint64_t sync_interval_ms = 0;
  uint64_t election_timeout_ms = 0;
  std::vector<gemini::CoordinatorReplica::PeerEndpoint> peers;
  bool use_poll = false;
  gemini::RecoveryPolicy policy = gemini::RecoveryPolicy::GeminiOW();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "geminicoordd: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<uint16_t>(ParseUint(arg, next(), 65535));
    } else if (arg == "--bind") {
      bind_address = next();
    } else if (arg == "--cluster-size") {
      cluster_size = ParseUint(arg, next(), 1u << 20);
    } else if (arg == "--fragments") {
      fragments = ParseUint(arg, next(), 1u << 24);
    } else if (arg == "--heartbeat-interval-ms") {
      heartbeat_interval_ms = ParseUint(arg, next(), 60 * 1000);
    } else if (arg == "--miss-threshold") {
      miss_threshold = ParseUint(arg, next(), 1000);
    } else if (arg == "--lease-ttl-ms") {
      lease_ttl_ms = ParseUint(arg, next(), 24ull * 3600 * 1000);
    } else if (arg == "--peers") {
      peers = ParsePeers(next());
    } else if (arg == "--rank") {
      rank = ParseUint(arg, next(), 1u << 20);
    } else if (arg == "--sync-interval-ms") {
      sync_interval_ms = ParseUint(arg, next(), 60 * 1000);
    } else if (arg == "--election-timeout-ms") {
      election_timeout_ms = ParseUint(arg, next(), 600 * 1000);
    } else if (arg == "--policy") {
      policy = ParsePolicy(next());
    } else if (arg == "--threads") {
      threads = ParseUint(arg, next(), 64);
    } else if (arg == "--poll") {
      use_poll = true;
    } else if (arg == "--verbose") {
      gemini::LogState::SetLevel(gemini::LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "geminicoordd: unknown option " << arg << "\n";
      Usage(argv[0]);
      return 2;
    }
  }

  if (cluster_size == 0) {
    std::cerr << "geminicoordd: --cluster-size is required (and positive)\n";
    Usage(argv[0]);
    return 2;
  }
  if (fragments == 0) fragments = cluster_size;
  if (heartbeat_interval_ms == 0 || miss_threshold == 0 || lease_ttl_ms == 0) {
    std::cerr << "geminicoordd: --heartbeat-interval-ms, --miss-threshold and "
                 "--lease-ttl-ms must be positive\n";
    return 2;
  }

  gemini::CoordinatorReplica::Options ropts;
  ropts.control.num_instances = cluster_size;
  ropts.control.num_fragments = fragments;
  ropts.control.coordinator.policy = policy;
  ropts.control.coordinator.fragment_lease_lifetime =
      gemini::Millis(static_cast<double>(lease_ttl_ms));
  ropts.control.heartbeat.interval =
      gemini::Millis(static_cast<double>(heartbeat_interval_ms));
  ropts.control.heartbeat.miss_threshold =
      static_cast<uint32_t>(miss_threshold);
  ropts.peers = peers;
  ropts.rank = static_cast<uint32_t>(rank);
  if (sync_interval_ms > 0) {
    ropts.sync_interval = gemini::Millis(sync_interval_ms);
  }
  if (election_timeout_ms > 0) {
    ropts.election_timeout = gemini::Millis(election_timeout_ms);
  }
  gemini::CoordinatorReplica replica(&gemini::SystemClock::Global(), ropts);

  gemini::TransportServer::Options options;
  options.bind_address = bind_address;
  options.port = port;
  options.num_loops = std::max<uint32_t>(1, static_cast<uint32_t>(threads));
  options.use_poll_fallback = use_poll;
  options.control = &replica;
  gemini::TransportServer server(gemini::InstanceRegistry(), options);
  if (gemini::Status s = server.Start(); !s.ok()) {
    std::cerr << "geminicoordd: " << s.ToString() << "\n";
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  replica.Start(&server);

  std::cout << "geminicoordd: coordinating " << cluster_size << " instances, "
            << fragments << " fragments (" << policy.Name() << ") on "
            << bind_address << ":" << server.port() << std::endl;
  if (!peers.empty()) {
    std::cout << "geminicoordd: replica rank " << rank << ", "
              << peers.size() << " peer(s); booting as shadow" << std::endl;
  }

  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::cout << "geminicoordd: shutting down\n";
  // Replica first (halts the sync/election loop and the active control's
  // ticker — no further pushes), then the server: the order
  // PushConfigToSubscribers's contract requires.
  replica.Stop();
  server.Stop();
  return 0;
}
