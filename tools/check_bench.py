#!/usr/bin/env python3
"""Compare a fresh bench run against a committed BENCH_*.json baseline.

Absolute ops/sec are machine-dependent (the committed baselines record the
machine's core count in params where it matters), so this checks the *shape*
of each series instead: within a result group (same "name"), every point's
ops_per_sec is normalized by the group's anchor point (the one with the
smallest scale-parameter value, e.g. window=1 or loops=1). A regression is a
fresh normalized curve that falls more than --tolerance below the baseline's
normalized curve — e.g. pipelining that used to give 10x at window 32 now
giving 3x, or a sharded server that used to scale now serializing.

The check is deliberately one-sided and generous: faster is never a failure,
and a baseline speedup is only enforced down to max(1-tol, base*(1-tol)) so
a baseline recorded on a many-core machine cannot fail a small CI runner
that has no cores to scale across — its curve legitimately flattens to ~1.0,
and with extra threads time-slicing one core it may even dip slightly below.
Only anti-scaling beyond the tolerance itself fails.

The shape gate is speedup-only: a point whose baseline is *slower* than its
group's anchor (normalized < 1.0) can never fail it. For curves whose whole
story is a bounded slowdown — e.g. persist_set, where wal=1 must stay within
a fraction of wal=0 — pass --min-point to pin a floor on a specific fresh
point's normalized value:

  --min-point persist_set:wal=1:0.55

reads "in the fresh run, persist_set at wal=1 must reach at least 0.55x of
the group's anchor (wal=0)". Self-relative, so absolute machine speed
cancels out exactly like the shape gate. Repeatable.

Usage:
  check_bench.py --baseline BENCH_transport.json --fresh fresh.json \
                 [--tolerance 0.4] [--min-point GROUP:PARAM=VALUE:FLOOR ...]

Exit codes: 0 ok, 1 regression, 2 usage/schema error.
"""

import argparse
import json
import sys

# Parameters that identify a point on the scale axis, in preference order.
SCALE_PARAM_CANDIDATES = ("window", "loops", "connections", "threads")
# Parameters that describe the machine or run size, never the scale axis.
IGNORED_PARAMS = ("cpus", "ops", "value_bytes", "keys", "stripes", "backend",
                  "kernel")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_bench: cannot read {path}: {e}")
    if not isinstance(doc.get("results"), list) or not doc["results"]:
        sys.exit(f"check_bench: {path} has no results")
    for r in doc["results"]:
        if not isinstance(r.get("name"), str) or "params" not in r:
            sys.exit(f"check_bench: {path} has a malformed result entry")
        if not isinstance(r.get("ops_per_sec"), (int, float)):
            sys.exit(f"check_bench: {path}: ops_per_sec missing")
    return doc


def scale_param(group):
    """The parameter that varies across the group (the series' x axis)."""
    varying = set()
    for key in group[0]["params"]:
        values = {r["params"].get(key) for r in group}
        if len(values) > 1:
            varying.add(key)
    for candidate in SCALE_PARAM_CANDIDATES:
        if candidate in varying:
            return candidate
    varying -= set(IGNORED_PARAMS)
    return sorted(varying)[0] if varying else None


def normalized(group, param):
    """{scale value: ops_per_sec / anchor ops_per_sec}, anchor = min scale."""
    points = {r["params"][param]: r["ops_per_sec"] for r in group}
    anchor = points[min(points)]
    if anchor <= 0:
        sys.exit("check_bench: anchor point has non-positive ops_per_sec")
    return {scale: ops / anchor for scale, ops in points.items()}


def group_by_name(doc):
    groups = {}
    for r in doc["results"]:
        groups.setdefault(r["name"], []).append(r)
    return groups


def parse_min_point(spec):
    """GROUP:PARAM=VALUE:FLOOR -> (group, param, value, floor)."""
    try:
        group, rest = spec.split(":", 1)
        pv, floor = rest.rsplit(":", 1)
        param, value = pv.split("=", 1)
        return group, param, float(value), float(floor)
    except ValueError:
        sys.exit(f"check_bench: bad --min-point {spec!r} "
                 "(want GROUP:PARAM=VALUE:FLOOR)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--fresh", required=True)
    ap.add_argument("--tolerance", type=float, default=0.4,
                    help="allowed fractional drop in normalized speedup")
    ap.add_argument("--min-point", action="append", default=[],
                    metavar="GROUP:PARAM=VALUE:FLOOR",
                    help="require a fresh point's normalized ops_per_sec "
                         "(vs its group anchor) to reach FLOOR")
    args = ap.parse_args()
    if not 0 <= args.tolerance < 1:
        sys.exit("check_bench: --tolerance must be in [0, 1)")

    base_groups = group_by_name(load(args.baseline))
    fresh_groups = group_by_name(load(args.fresh))

    failures = []
    checked = 0
    for name, base_group in sorted(base_groups.items()):
        if name not in fresh_groups:
            failures.append(f"{name}: missing from fresh run")
            continue
        param = scale_param(base_group)
        if param is None:
            print(f"  {name}: single point, no scale axis — skipped")
            continue
        if any(param not in r["params"] for r in fresh_groups[name]):
            failures.append(f"{name}: fresh run lacks param {param!r}")
            continue
        base_curve = normalized(base_group, param)
        fresh_curve = normalized(fresh_groups[name], param)
        for scale in sorted(base_curve):
            base_norm = base_curve[scale]
            if scale not in fresh_curve:
                failures.append(f"{name}: fresh run missing {param}={scale:g}")
                continue
            fresh_norm = fresh_curve[scale]
            checked += 1
            # Only enforce speedups the baseline actually demonstrated. The
            # floor dips below flat (1.0) by the tolerance: a fresh run on
            # weaker hardware may legitimately not scale — and with threads
            # time-slicing one core may even anti-scale a little — but it
            # must not anti-scale beyond the tolerance.
            floor = max(1.0 - args.tolerance,
                        base_norm * (1 - args.tolerance))
            ok = base_norm < 1.0 or fresh_norm >= floor
            marker = "ok " if ok else "REGRESSION"
            print(f"  {name} {param}={scale:g}: baseline {base_norm:.2f}x, "
                  f"fresh {fresh_norm:.2f}x (floor {floor:.2f}x) {marker}")
            if not ok:
                failures.append(
                    f"{name} {param}={scale:g}: normalized {fresh_norm:.2f}x "
                    f"< floor {floor:.2f}x (baseline {base_norm:.2f}x)")

    for spec in args.min_point:
        group_name, param, value, floor = parse_min_point(spec)
        if group_name not in fresh_groups:
            failures.append(f"{group_name}: missing from fresh run "
                            f"(--min-point {spec})")
            continue
        group = fresh_groups[group_name]
        if any(param not in r["params"] for r in group):
            failures.append(f"{group_name}: fresh run lacks param {param!r} "
                            f"(--min-point {spec})")
            continue
        curve = normalized(group, param)
        if value not in curve:
            failures.append(f"{group_name}: fresh run missing "
                            f"{param}={value:g} (--min-point {spec})")
            continue
        checked += 1
        ok = curve[value] >= floor
        marker = "ok " if ok else "REGRESSION"
        print(f"  {group_name} {param}={value:g}: fresh {curve[value]:.2f}x "
              f"(min-point floor {floor:.2f}x) {marker}")
        if not ok:
            failures.append(
                f"{group_name} {param}={value:g}: normalized "
                f"{curve[value]:.2f}x < min-point floor {floor:.2f}x")

    if failures:
        print(f"check_bench: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"check_bench: {checked} point(s) within tolerance "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
