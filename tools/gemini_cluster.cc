// gemini_cluster: a process-level crash/recovery harness for the networked
// control plane.
//
// Spawns a geminicoordd group (--coordinators: one master plus shadows,
// docs/PROTOCOL.md §12.7) and N geminids (each durably backed by a WAL data
// dir and heartbeating to the coordinator), fronts every geminid's data port
// with a seeded in-process FaultProxy, and drives foreground load through an
// unmodified GeminiClient + RemoteCoordinator — configurations arrive as
// kPushConfig frames, recovery notifications travel as kCoordReport. Each
// cycle it kill -9s a seeded victim mid-burst and asserts the paper's
// failover story end to end over real sockets:
//
//   missed heartbeats -> coordinator fails the instance over (config id
//   advances, pushed live to clients) -> transient writes append dirty
//   lists in the secondary -> the victim restarts on the same data dir,
//   replays its WAL, re-registers -> recovery workers drain dirty lists
//   over TCP -> fragments return to normal.
//
// With --coordinators > 1 every cycle also kill -9s the *master*
// geminicoordd mid-burst, before the geminid victim dies — so the shadow
// that promotes itself (from replicated state alone) is the coordinator
// that must detect the dead instance, run the recovery cycle, and publish
// fenced config ids, while geminids and clients redial through their
// endpoint lists. The run measures time-to-new-master per kill and fails
// unless every master kill produced an observed promotion and at least one
// client redial.
//
// A StaleReadChecker audits every foreground read against the data store;
// any read-after-write violation fails the run (exit 1). Each client thread
// owns a disjoint key range so the audit is exact under concurrency. All
// scheduling randomness derives from --seed: the same seed replays the same
// fault schedule, victim choices, and op mix.
//
// Usage:
//   gemini_cluster [--seed S] [--instances N] [--coordinators R]
//                  [--fragments M] [--cycles C] [--keys K] [--ops N]
//                  [--verbose]
//
// Exit codes: 0 clean sweep, 1 stale reads, a dead daemon, or missing
// failover evidence, 2 bad flags, 3 recovery never converged.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/client/gemini_client.h"
#include "src/cluster/remote_coordinator.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/configuration.h"
#include "src/recovery/recovery_worker.h"
#include "src/store/data_store.h"
#include "src/transport/fault_proxy.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

#ifndef GEMINID_PATH
#error "GEMINID_PATH must point at the geminid binary"
#endif
#ifndef GEMINICOORDD_PATH
#error "GEMINICOORDD_PATH must point at the geminicoordd binary"
#endif

namespace gemini {
namespace {

uint64_t ParseUint(const std::string& flag, const char* value, uint64_t max) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || parsed > max ||
      value[0] == '-') {
    std::cerr << "gemini_cluster: invalid value '" << value << "' for "
              << flag << " (expected an integer in [0, " << max << "])\n";
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

void Usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [options]\n"
            << "  --seed S       fault/victim/op schedule seed (default 1)\n"
            << "  --instances N  geminid processes (default 3)\n"
            << "  --coordinators R  geminicoordd replicas (default 1); with\n"
               "                 R > 1 every cycle also kill -9s the master\n"
               "                 coordinator and asserts a shadow promotes\n"
            << "  --fragments M  fragment count (default 2*N)\n"
            << "  --cycles C     kill -9 / restart cycles (default 2)\n"
            << "  --keys K       keys per client thread (default 64)\n"
            << "  --ops N        foreground ops per thread per burst "
               "(default 400)\n"
            << "  --heartbeat-ms N  heartbeat cadence for coordinator and\n"
               "                 nodes; failover after 3 missed beats\n"
               "                 (default 50)\n"
            << "  --verbose      info-level logging\n";
}

struct Child {
  pid_t pid = -1;
  int stdout_fd = -1;
};

/// fork/execs `path` with `args`; the child's stdout arrives on stdout_fd.
Child Spawn(const char* path, const std::vector<std::string>& args) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    std::string bin = path;
    argv.push_back(bin.data());
    std::vector<std::string> owned = args;
    for (auto& a : owned) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(path, argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(pipefd[1]);
  return {pid, pipefd[0]};
}

/// Reads the child's stdout until `needle` shows up (or ~15 s pass).
std::string ReadUntil(int fd, const std::string& needle) {
  std::string out;
  char buf[512];
  const Timestamp start = SystemClock::Global().Now();
  while (out.find(needle) == std::string::npos) {
    if (SystemClock::Global().Now() - start > Seconds(15)) break;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

/// Parses "... on 127.0.0.1:PORT" out of a daemon's startup banner.
uint16_t PortFromBanner(const std::string& banner) {
  const std::string marker = "on 127.0.0.1:";
  const size_t at = banner.find(marker);
  if (at == std::string::npos) return 0;
  return static_cast<uint16_t>(std::atoi(banner.c_str() + at + marker.size()));
}

int WaitForExit(pid_t pid) {
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) return -1;
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -WTERMSIG(wstatus);
}

struct Flags {
  uint64_t seed = 1;
  size_t instances = 3;
  size_t coordinators = 1;
  size_t fragments = 0;  // 0 = 2 * instances
  size_t cycles = 2;
  size_t keys = 64;
  size_t ops = 400;
  uint64_t heartbeat_ms = 50;
};

/// Binds an ephemeral 127.0.0.1 port and releases it. A replicated
/// coordinator group needs its ports picked *before* any member spawns
/// (each member's --peers list names the others), so banner parsing is too
/// late. The small close-to-bind race is acceptable in a test harness.
uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ::close(fd);
  return port;
}

constexpr size_t kClientThreads = 2;
constexpr size_t kRecoveryWorkers = 2;
/// Heartbeat cadence handed to geminicoordd and every geminid (failover
/// fires after 3 missed beats). Set once from --heartbeat-ms before any
/// process spawns; deep CI rounds raise it so a sanitizer-slowed scheduler
/// stall does not read as an instance death.
uint64_t g_heartbeat_ms = 50;

/// One geminid process plus the seeded chaos proxy in front of its data
/// port. The proxy targets the *fixed* server port, so a restarted victim
/// (same --port) is reachable through the same proxy; the coordinator link
/// advertises the real port — control traffic bypasses the chaos.
struct Node {
  InstanceId id = 0;
  std::string data_dir;
  uint16_t port = 0;  // 0 = first spawn picks one; fixed afterwards
  Child child;
  std::unique_ptr<FaultProxy> proxy;
};

bool SpawnNode(Node& node, const std::string& coord_list) {
  std::vector<std::string> args = {
      "--port",        std::to_string(node.port),
      "--instance",    std::to_string(node.id),
      "--data-dir",    node.data_dir,
      "--coordinator", coord_list,
      "--heartbeat-interval-ms", std::to_string(g_heartbeat_ms),
      "--threads",     "2"};
  node.child = Spawn(GEMINID_PATH, args);
  if (node.child.pid <= 0) return false;
  const std::string banner = ReadUntil(node.child.stdout_fd, "serving on");
  const uint16_t port = PortFromBanner(banner);
  if (port == 0) {
    std::cerr << "gemini_cluster: geminid " << node.id
              << " printed no banner:\n"
              << banner;
    return false;
  }
  node.port = port;
  return true;
}

/// One member of the geminicoordd group. Ports are fixed up front
/// (PickFreePort) because every member's --peers list names the others, and
/// a killed member restarts on the same port so the survivors' peer
/// connections find it again.
struct Coord {
  uint32_t rank = 0;
  uint16_t port = 0;
  Child child;
  bool alive = false;
};

bool SpawnCoord(std::vector<Coord>& coords, size_t idx, size_t instances,
                size_t fragments) {
  Coord& c = coords[idx];
  std::vector<std::string> args = {
      "--port", std::to_string(c.port),
      "--cluster-size", std::to_string(instances),
      "--fragments", std::to_string(fragments),
      "--heartbeat-interval-ms", std::to_string(g_heartbeat_ms),
      "--miss-threshold", "3",
      "--lease-ttl-ms", "3000"};
  if (coords.size() > 1) {
    std::string peers;
    for (size_t i = 0; i < coords.size(); ++i) {
      if (i == idx) continue;
      if (!peers.empty()) peers += ",";
      peers += "127.0.0.1:" + std::to_string(coords[i].port);
    }
    args.insert(args.end(), {"--peers", peers, "--rank",
                             std::to_string(c.rank)});
  }
  c.child = Spawn(GEMINICOORDD_PATH, args);
  if (c.child.pid <= 0) return false;
  if (PortFromBanner(ReadUntil(c.child.stdout_fd, "coordinating")) == 0) {
    std::cerr << "gemini_cluster: geminicoordd rank " << c.rank
              << " printed no banner\n";
    return false;
  }
  c.alive = true;
  return true;
}

/// Fetches one counter from a daemon's kStats reply; false if the daemon is
/// unreachable or does not export `name`. Stats are instanceless, so this
/// works against coordinator-only servers — shadows included (only kCoord*
/// control ops answer kNotMaster on a shadow).
bool QueryStat(uint16_t port, const std::string& name, uint64_t* value) {
  TcpConnection::Options copts;
  copts.connect_timeout = Millis(250);
  copts.io_timeout = Millis(500);
  auto conn =
      TcpConnection::Acquire("127.0.0.1", port, wire::kAnyInstance, copts);
  std::string resp;
  if (!conn->Transact(wire::Op::kStats, "", &resp).ok()) return false;
  wire::Reader r(resp);
  uint32_t count = 0;
  if (!r.GetU32(&count)) return false;
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view key;
    uint64_t v = 0;
    if (!r.GetBlob(&key) || !r.GetU64(&v)) return false;
    if (key == name) {
      *value = v;
      return true;
    }
  }
  return false;
}

/// Index of the group member currently answering as master; -1 if none.
int FindMaster(const std::vector<Coord>& coords) {
  for (size_t i = 0; i < coords.size(); ++i) {
    if (!coords[i].alive) continue;
    uint64_t is_master = 0;
    if (QueryStat(coords[i].port, "cluster.is_master", &is_master) &&
        is_master != 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool AllFragmentsNormal(const ConfigurationPtr& config, size_t fragments) {
  if (config == nullptr) return false;
  for (FragmentId f = 0; f < fragments; ++f) {
    const FragmentAssignment& a = config->fragment(f);
    if (a.mode != FragmentMode::kNormal || a.primary == kInvalidInstance) {
      return false;
    }
  }
  return true;
}

/// Polls until `pred` holds; false on timeout.
template <typename Pred>
bool WaitFor(Pred pred, Duration timeout) {
  const Timestamp start = SystemClock::Global().Now();
  while (!pred()) {
    if (SystemClock::Global().Now() - start > timeout) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return true;
}

int Run(const Flags& flags) {
  g_heartbeat_ms = flags.heartbeat_ms;
  const size_t fragments =
      flags.fragments != 0 ? flags.fragments : 2 * flags.instances;

  char ws_template[] = "/tmp/gemini_cluster.XXXXXX";
  const char* workspace = ::mkdtemp(ws_template);
  if (workspace == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  std::cout << "gemini_cluster: seed " << flags.seed << ", " << flags.instances
            << " instances, " << fragments << " fragments, workspace "
            << workspace << std::endl;

  // ---- Control plane: a geminicoordd group on pre-picked ports --------------
  // Rank i gets its own fixed port; with --coordinators > 1 each member is
  // spawned with the others as --peers and boots as a shadow — rank 0 wins
  // the initial election (lowest rank, shortest staggered delay).
  std::vector<Coord> coords(flags.coordinators);
  for (size_t i = 0; i < coords.size(); ++i) {
    coords[i].rank = static_cast<uint32_t>(i);
    coords[i].port = PickFreePort();
    if (coords[i].port == 0) {
      std::cerr << "gemini_cluster: no free port for coordinator " << i
                << "\n";
      return 1;
    }
  }
  std::string coord_list;
  for (const Coord& c : coords) {
    if (!coord_list.empty()) coord_list += ",";
    coord_list += "127.0.0.1:" + std::to_string(c.port);
  }
  for (size_t i = 0; i < coords.size(); ++i) {
    if (!SpawnCoord(coords, i, flags.instances, fragments)) return 1;
  }

  // ---- Data plane: geminids behind seeded chaos proxies ---------------------
  std::vector<Node> nodes(flags.instances);
  for (size_t i = 0; i < flags.instances; ++i) {
    nodes[i].id = static_cast<InstanceId>(i);
    nodes[i].data_dir = std::string(workspace) + "/node_" + std::to_string(i);
    if (!SpawnNode(nodes[i], coord_list)) return 1;

    // Frame chaos on the client data path only: delays, mid-frame stalls,
    // held bursts, and occasional RST-on-accept. No cuts/truncations — the
    // kill -9s below provide the hard failures, and a cut mid-write would
    // make the audit ambiguous (an unacknowledged store update is not a
    // read-after-write violation).
    FaultProxy::Options popts;
    popts.seed = flags.seed * 1000 + i;
    popts.reset_on_accept_prob = 0.02;
    FaultProxy::DirectionProfile profile;
    profile.skip_frames = 1;
    profile.delay_prob = 0.05;
    profile.delay_min = 0;
    profile.delay_max = Millis(2);
    profile.stall_prob = 0.01;
    profile.stall = Millis(10);
    profile.hold_every = 64;
    profile.hold_count = 4;
    popts.client_to_server = profile;
    popts.server_to_client = profile;
    nodes[i].proxy =
        std::make_unique<FaultProxy>("127.0.0.1", nodes[i].port, popts);
    if (Status s = nodes[i].proxy->Start(); !s.ok()) {
      std::cerr << "gemini_cluster: proxy " << i << ": " << s.ToString()
                << "\n";
      return 1;
    }
  }

  // ---- Clients --------------------------------------------------------------
  DataStore store;
  std::vector<RemoteCoordinator::Endpoint> coord_endpoints;
  for (const Coord& c : coords) {
    coord_endpoints.push_back({"127.0.0.1", c.port});
  }
  RemoteCoordinator coordinator(coord_endpoints, RemoteCoordinator::Options());
  std::vector<std::unique_ptr<TcpCacheBackend>> backends;
  std::vector<CacheBackend*> backend_ptrs;
  for (const Node& node : nodes) {
    backends.push_back(std::make_unique<TcpCacheBackend>(
        "127.0.0.1", node.proxy->port(), node.id,
        TcpCacheBackend::Options()));
    backend_ptrs.push_back(backends.back().get());
  }

  // Wait for every instance to register: the bootstrap publishes converge
  // to an all-normal configuration that the watch connection then tracks.
  if (!WaitFor(
          [&] {
            (void)coordinator.Refresh();
            return AllFragmentsNormal(coordinator.GetConfiguration(),
                                      fragments);
          },
          Seconds(20))) {
    std::cerr << "gemini_cluster: cluster never converged at bootstrap\n";
    return 3;
  }
  const ConfigId boot_id = coordinator.latest_id();
  std::cout << "gemini_cluster: bootstrap complete, config id " << boot_id
            << std::endl;

  GeminiClient::Options copts;
  copts.follow_config_pushes = true;  // adopt kPushConfig frames eagerly
  GeminiClient client(&SystemClock::Global(), &coordinator, backend_ptrs,
                      &store, copts);

  // Seed the store: thread t owns keys "t<t>/k<j>" — disjoint ranges keep
  // the read-after-write audit exact under concurrency.
  auto key_of = [](size_t thread, size_t j) {
    return "t" + std::to_string(thread) + "/k" + std::to_string(j);
  };
  for (size_t t = 0; t < kClientThreads; ++t) {
    for (size_t j = 0; j < flags.keys; ++j) store.Put(key_of(t, j), "seed");
  }

  // ---- Recovery workers (drain dirty lists, then stream the working set) ----
  std::atomic<bool> workers_stop{false};
  std::vector<std::thread> workers;
  std::vector<RecoveryWorker::Stats> worker_stats(kRecoveryWorkers);
  for (size_t w = 0; w < kRecoveryWorkers; ++w) {
    workers.emplace_back([&, w] {
      // The coordinator runs its default gemini-o+W policy: after draining a
      // dirty list the worker keeps the fragment and streams the secondary's
      // hot keys back into the restarted primary (kWorkingSetScan pages),
      // reporting the transfer's termination itself — recovery mode does not
      // end until it does.
      RecoveryWorker::Options wopts;
      wopts.working_set_transfer = true;
      wopts.wst_page_keys = 128;
      RecoveryWorker worker(&SystemClock::Global(), &coordinator,
                            backend_ptrs, wopts);
      Session session;
      while (!workers_stop.load(std::memory_order_acquire)) {
        if (worker.TryAdoptFragment(session).has_value()) {
          while (!worker.Step(session)) {
          }
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
      }
      worker_stats[w] = worker.stats();
    });
  }

  // ---- Seeded kill/restart cycles under foreground load ---------------------
  std::mt19937_64 rng(flags.seed);
  std::vector<StaleReadChecker> checkers;
  checkers.reserve(kClientThreads);
  for (size_t t = 0; t < kClientThreads; ++t) checkers.emplace_back(&store);
  std::atomic<uint64_t> suspended_writes{0};

  auto burst = [&](size_t thread, uint64_t burst_seed) {
    std::mt19937_64 trng(burst_seed);
    Session session;
    uint64_t counter = 0;
    for (size_t i = 0; i < flags.ops; ++i) {
      const std::string key = key_of(thread, trng() % flags.keys);
      if (trng() % 4 == 0) {
        Status s =
            client.Write(session, key, "v" + std::to_string(++counter));
        if (s.code() == Code::kSuspended) {
          // Failover window: no reachable replica and no fresh
          // configuration yet. The write did not happen; back off.
          suspended_writes.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      } else {
        auto r = client.Read(session, key);
        if (r.ok()) {
          checkers[thread].OnRead(SystemClock::Global().Now(), key,
                                  r->value.version);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
    }
  };

  auto run_bursts = [&](uint64_t tag) {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kClientThreads; ++t) {
      threads.emplace_back(burst, t, flags.seed * 7919 + tag * 104729 + t);
    }
    return threads;
  };

  int exit_code = 0;
  size_t master_kills = 0;
  size_t promotions_observed = 0;
  Duration ttnm_total = 0;
  Duration ttnm_max = 0;
  for (size_t cycle = 0; cycle < flags.cycles && exit_code == 0; ++cycle) {
    const size_t victim = rng() % flags.instances;
    const ConfigId before = coordinator.latest_id();
    int old_master = -1;
    if (flags.coordinators > 1 && (old_master = FindMaster(coords)) < 0) {
      std::cerr << "gemini_cluster: no coordinator answers as master\n";
      exit_code = 3;
      break;
    }

    // Phase A: load, then kill -9 mid-burst — no snapshot, no checkpoint,
    // no goodbye heartbeat. Detection must come from the missed-beat
    // deadline alone. With a coordinator group, the *master* geminicoordd
    // dies first: the shadow that promotes itself must detect the dead
    // instance from replicated registration state alone, while clients and
    // geminids redial through their endpoint lists mid-burst.
    std::vector<std::thread> threads = run_bursts(cycle * 2);
    std::thread promotion_watch;
    std::atomic<int> promoted_idx{-1};
    std::atomic<int64_t> ttnm_us{0};
    if (flags.coordinators > 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(75));
      const pid_t master_pid = coords[old_master].child.pid;
      ::kill(master_pid, SIGKILL);
      (void)WaitForExit(master_pid);
      ::close(coords[old_master].child.stdout_fd);
      coords[old_master].alive = false;
      ++master_kills;
      const Timestamp killed_at = SystemClock::Global().Now();
      std::cout << "gemini_cluster: cycle " << cycle
                << ": killed master coordinator rank "
                << coords[old_master].rank << " (pid " << master_pid << ")"
                << std::endl;
      // Poll for the promotion concurrently with the burst so the measured
      // time-to-new-master is the election delay, not the burst length.
      promotion_watch = std::thread([&coords, &promoted_idx, &ttnm_us,
                                     killed_at] {
        while (SystemClock::Global().Now() - killed_at < Seconds(10)) {
          const int m = FindMaster(coords);
          if (m >= 0) {
            ttnm_us.store(SystemClock::Global().Now() - killed_at,
                          std::memory_order_relaxed);
            promoted_idx.store(m, std::memory_order_release);
            return;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(75));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    const pid_t victim_pid = nodes[victim].child.pid;
    ::kill(victim_pid, SIGKILL);
    (void)WaitForExit(victim_pid);
    ::close(nodes[victim].child.stdout_fd);
    std::cout << "gemini_cluster: cycle " << cycle << ": killed instance "
              << victim << " (pid " << victim_pid << ")" << std::endl;
    for (auto& th : threads) th.join();

    if (flags.coordinators > 1) {
      promotion_watch.join();
      const int promoted = promoted_idx.load(std::memory_order_acquire);
      if (promoted < 0) {
        std::cerr << "gemini_cluster: no shadow promoted itself within 10 s "
                     "of the master kill\n";
        exit_code = 3;
        break;
      }
      ++promotions_observed;
      const Duration ttnm = ttnm_us.load(std::memory_order_relaxed);
      ttnm_total += ttnm;
      ttnm_max = std::max(ttnm_max, ttnm);
      std::cout << "gemini_cluster: coordinator rank "
                << coords[promoted].rank << " promoted to master in "
                << ttnm / 1000 << " ms" << std::endl;
      // Restart the dead member on its old port: it boots as a shadow and
      // the new master's sync beat folds it back into the group.
      if (!SpawnCoord(coords, static_cast<size_t>(old_master),
                      flags.instances, fragments)) {
        exit_code = 1;
        break;
      }
    }

    // The coordinator must notice via heartbeats and advance the config;
    // the watch connection receives the push.
    if (!WaitFor([&] { return coordinator.latest_id() > before; },
                 Seconds(10))) {
      std::cerr << "gemini_cluster: coordinator never failed over instance "
                << victim << "\n";
      exit_code = 3;
      break;
    }
    std::cout << "gemini_cluster: failover push received, config id "
              << coordinator.latest_id() << std::endl;

    // Restart on the same data dir and (fixed) port: WAL replay restores
    // pre-crash state, the link re-registers, the coordinator runs its
    // recovery cycle, and the workers drain the dirty lists.
    if (!SpawnNode(nodes[victim], coord_list)) {
      exit_code = 1;
      break;
    }
    if (!WaitFor(
            [&] {
              return AllFragmentsNormal(coordinator.GetConfiguration(),
                                        fragments);
            },
            Seconds(30))) {
      std::cerr << "gemini_cluster: recovery never converged after "
                   "restarting instance "
                << victim << "\n";
      exit_code = 3;
      break;
    }
    std::cout << "gemini_cluster: cycle " << cycle
              << ": recovered to normal, config id "
              << coordinator.latest_id() << std::endl;

    // Phase B: audited load against the recovered cluster.
    threads = run_bursts(cycle * 2 + 1);
    for (auto& th : threads) th.join();
  }

  workers_stop.store(true, std::memory_order_release);
  for (auto& th : workers) th.join();

  uint64_t reads = 0, stale = 0;
  for (const StaleReadChecker& c : checkers) {
    reads += c.total_reads();
    stale += c.total_stale();
  }
  const GeminiClient::Stats cs = client.stats();
  std::cout << "gemini_cluster: " << reads << " audited reads, " << stale
            << " stale; client " << cs.reads << " reads / " << cs.writes
            << " writes (" << cs.cache_hits << " hits, " << cs.store_reads
            << " store fallthroughs, " << suspended_writes.load()
            << " suspended)" << std::endl;
  RecoveryWorker::Stats ws;
  for (const RecoveryWorker::Stats& s : worker_stats) {
    ws.fragments_recovered += s.fragments_recovered;
    ws.fragments_abandoned += s.fragments_abandoned;
    ws.keys_overwritten += s.keys_overwritten;
    ws.wst_keys_copied += s.wst_keys_copied;
    ws.wst_keys_skipped += s.wst_keys_skipped;
    ws.wst_bytes_copied += s.wst_bytes_copied;
    ws.wst_pages += s.wst_pages;
    ws.wst_completed += s.wst_completed;
    ws.wst_aborts += s.wst_aborts;
  }
  std::cout << "gemini_cluster: recovery " << ws.fragments_recovered
            << " fragments drained (" << ws.keys_overwritten
            << " dirty keys overwritten, " << ws.fragments_abandoned
            << " abandoned); working set " << ws.wst_completed
            << " transfers completed / " << ws.wst_aborts << " aborted, "
            << ws.wst_keys_copied << " keys copied ("
            << ws.wst_bytes_copied << " bytes, " << ws.wst_pages
            << " pages), " << ws.wst_keys_skipped << " skipped" << std::endl;
  // Every burst thread was joined above, so reaching this line is the
  // no-hung-calls proof; say so explicitly for log scrapers.
  std::cout << "gemini_cluster: all client bursts joined (0 hung client "
               "calls)" << std::endl;
  if (stale != 0 && exit_code == 0) exit_code = 1;

  // Coordinator failover evidence: every master kill must have produced an
  // observed promotion, and the clients must actually have redialed (their
  // first endpoint died at least once).
  const RemoteCoordinator::Stats coord_stats = coordinator.stats();
  if (flags.coordinators > 1) {
    std::cout << "gemini_cluster: coordinator failover: " << master_kills
              << " master kills, " << promotions_observed
              << " promotions observed, " << coord_stats.endpoint_switches
              << " client redials (" << coord_stats.not_master_bounces
              << " not-master bounces), time-to-new-master avg "
              << (master_kills != 0 ? ttnm_total / (1000 * master_kills) : 0)
              << " ms / max " << ttnm_max / 1000 << " ms" << std::endl;
    if (exit_code == 0 && promotions_observed < master_kills) exit_code = 1;
    if (exit_code == 0 && master_kills > 0 &&
        coord_stats.endpoint_switches == 0) {
      std::cerr << "gemini_cluster: master kills without a single client "
                   "redial — failover never exercised the endpoint list\n";
      exit_code = 1;
    }
  }

  // Coordinators first: once their tickers halt, the geminids going away
  // does not read as a cluster-wide failover (spurious missed-heartbeat
  // warnings).
  for (Coord& c : coords) {
    if (!c.alive) continue;
    ::kill(c.child.pid, SIGTERM);
    if (WaitForExit(c.child.pid) != 0 && exit_code == 0) exit_code = 1;
    ::close(c.child.stdout_fd);
    c.alive = false;
  }
  for (Node& node : nodes) {
    node.proxy->Stop();
    ::kill(node.child.pid, SIGTERM);
    if (WaitForExit(node.child.pid) != 0 && exit_code == 0) exit_code = 1;
    ::close(node.child.stdout_fd);
  }

  std::cout << (exit_code == 0 ? "gemini_cluster: PASS"
                               : "gemini_cluster: FAIL")
            << " (seed " << flags.seed << ")" << std::endl;
  return exit_code;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) {
  gemini::Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gemini_cluster: " << arg << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      flags.seed = gemini::ParseUint(arg, next(), ~uint64_t{0} - 1);
    } else if (arg == "--instances") {
      flags.instances = gemini::ParseUint(arg, next(), 64);
    } else if (arg == "--coordinators") {
      flags.coordinators = gemini::ParseUint(arg, next(), 9);
      if (flags.coordinators == 0) {
        std::cerr << "gemini_cluster: --coordinators must be >= 1\n";
        return 2;
      }
    } else if (arg == "--fragments") {
      flags.fragments = gemini::ParseUint(arg, next(), 1 << 16);
    } else if (arg == "--cycles") {
      flags.cycles = gemini::ParseUint(arg, next(), 1 << 10);
    } else if (arg == "--keys") {
      flags.keys = gemini::ParseUint(arg, next(), 1 << 20);
    } else if (arg == "--ops") {
      flags.ops = gemini::ParseUint(arg, next(), 1 << 24);
    } else if (arg == "--heartbeat-ms") {
      flags.heartbeat_ms = gemini::ParseUint(arg, next(), 60000);
      if (flags.heartbeat_ms == 0) {
        std::cerr << "gemini_cluster: --heartbeat-ms must be > 0\n";
        return 2;
      }
    } else if (arg == "--verbose") {
      gemini::LogState::SetLevel(gemini::LogLevel::kInfo);
    } else if (arg == "--help" || arg == "-h") {
      gemini::Usage(argv[0]);
      return 0;
    } else {
      std::cerr << "gemini_cluster: unknown option " << arg << "\n";
      gemini::Usage(argv[0]);
      return 2;
    }
  }
  if (flags.instances < 2) {
    std::cerr << "gemini_cluster: --instances must be >= 2 (failover needs "
                 "a secondary)\n";
    return 2;
  }
  return gemini::Run(flags);
}
