// Working-set-transfer demo (Section 3.2.2 / 5.4.4): drives the full
// discrete-event harness with an evolving access pattern and shows why the
// +W variants matter.
//
// The application's working set switches completely during the failure, so
// the recovering instance's persistent content is useless — but the NEW
// working set was cached in the secondary replicas while the primary was
// down. Gemini-I+W copies it over on demand; Gemini-I must recompute it from
// the (much slower) data store.
//
// Build & run:  ./build/examples/working_set_transfer
#include <cstdio>
#include <memory>

#include "src/sim/cluster_sim.h"
#include "src/workload/ycsb.h"

using namespace gemini;

namespace {

std::unique_ptr<ClusterSim> MakeSim(RecoveryPolicy policy) {
  YcsbWorkload::Options wo;
  wo.num_records = 40'000;
  wo.update_fraction = 0.05;
  wo.evolution = YcsbWorkload::Evolution::kSwitch100;
  SimOptions so;
  so.num_instances = 4;
  so.num_fragments = 400;
  so.closed_loop_threads = 32;
  so.policy = policy;
  so.seed = 7;
  return std::make_unique<ClusterSim>(so, std::make_shared<YcsbWorkload>(wo));
}

}  // namespace

int main() {
  constexpr double kFailAt = 20, kFailFor = 15, kObserve = 15;

  std::printf("running Gemini-I and Gemini-I+W through a failure during\n"
              "which the working set changes 100%%...\n\n");

  std::unique_ptr<ClusterSim> sims[2] = {MakeSim(RecoveryPolicy::GeminiI()),
                                         MakeSim(RecoveryPolicy::GeminiIW())};
  for (auto& sim : sims) {
    sim->ScheduleFailure(0, Seconds(kFailAt), Seconds(kFailFor));
    sim->SchedulePhaseChange(Seconds(kFailAt), 1);  // the switch
    sim->Run(Seconds(kFailAt + kFailFor + kObserve));
  }

  std::printf("hit ratio of the recovering instance, per second after "
              "recovery:\n");
  std::printf("  sec   Gemini-I   Gemini-I+W\n");
  const auto rec = static_cast<size_t>(kFailAt + kFailFor);
  for (size_t s = 0; s < static_cast<size_t>(kObserve); ++s) {
    std::printf("  %3zu   %7.1f%%   %9.1f%%\n", s,
                sims[0]->metrics().InstanceHitBetween(0, rec + s, rec + s + 1) *
                    100,
                sims[1]->metrics().InstanceHitBetween(0, rec + s, rec + s + 1) *
                    100);
  }

  uint64_t copies = 0;
  for (size_t c = 0; c < sims[1]->num_clients(); ++c) {
    copies += sims[1]->client(c).stats().wst_copies;
  }
  std::printf("\nGemini-I+W transferred %llu entries from secondaries to the "
              "recovering primary\n",
              (unsigned long long)copies);
  std::printf("store queries: Gemini-I=%llu vs Gemini-I+W=%llu "
              "(the transfer spares the data store)\n",
              (unsigned long long)sims[0]->store().stats().queries,
              (unsigned long long)sims[1]->store().stats().queries);
  std::printf("stale reads (both must be zero): %llu / %llu\n",
              (unsigned long long)sims[0]->metrics().stale.total_stale(),
              (unsigned long long)sims[1]->metrics().stale.total_stale());
  return 0;
}
