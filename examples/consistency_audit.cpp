// Consistency audit (the paper's Figure 1 in miniature): run the same
// failure scenario under StaleCache (reuse persistent content verbatim) and
// Gemini-O+W, auditing every read with the Polygraph-style stale-read
// checker. StaleCache serves a burst of stale reads right after recovery;
// Gemini serves none.
//
// Build & run:  ./build/examples/consistency_audit
#include <cstdio>
#include <memory>

#include "src/sim/cluster_sim.h"
#include "src/workload/ycsb.h"

using namespace gemini;

namespace {

std::unique_ptr<ClusterSim> MakeSim(RecoveryPolicy policy) {
  YcsbWorkload::Options wo;
  wo.num_records = 30'000;
  wo.update_fraction = 0.10;  // plenty of writes -> plenty of staleness
  SimOptions so;
  so.num_instances = 4;
  so.num_fragments = 400;
  so.closed_loop_threads = 32;
  so.policy = policy;
  so.seed = 11;
  return std::make_unique<ClusterSim>(so, std::make_shared<YcsbWorkload>(wo));
}

}  // namespace

int main() {
  constexpr double kFailAt = 15, kFailFor = 10, kObserve = 20;

  std::printf("auditing every read for read-after-write violations...\n\n");
  std::unique_ptr<ClusterSim> sims[2] = {
      MakeSim(RecoveryPolicy::StaleCache()),
      MakeSim(RecoveryPolicy::GeminiOW())};
  const char* names[2] = {"StaleCache", "Gemini-O+W"};

  for (auto& sim : sims) {
    sim->ScheduleFailure(0, Seconds(kFailAt), Seconds(kFailFor));
    sim->Run(Seconds(kFailAt + kFailFor + kObserve));
  }

  std::printf("stale reads per second (failure at t=%.0fs, recovery at "
              "t=%.0fs):\n",
              kFailAt, kFailAt + kFailFor);
  std::printf("  sec   StaleCache   Gemini-O+W\n");
  for (size_t s = 0; s < kFailAt + kFailFor + kObserve; ++s) {
    std::printf("  %3zu   %10llu   %10llu\n", s,
                (unsigned long long)sims[0]
                    ->metrics()
                    .stale.stale_per_interval()
                    .At(Seconds(static_cast<double>(s))),
                (unsigned long long)sims[1]
                    ->metrics()
                    .stale.stale_per_interval()
                    .At(Seconds(static_cast<double>(s))));
  }

  for (int i = 0; i < 2; ++i) {
    const auto& m = sims[i]->metrics();
    std::printf("\n%s: %llu stale of %llu audited reads (%.3f%%)\n", names[i],
                (unsigned long long)m.stale.total_stale(),
                (unsigned long long)m.stale.total_reads(),
                m.stale.total_reads() > 0
                    ? 100.0 * double(m.stale.total_stale()) /
                          double(m.stale.total_reads())
                    : 0.0);
  }
  std::printf("\nGemini preserves read-after-write consistency through the "
              "failure;\nthe stale burst is exactly what its dirty lists "
              "prevent.\n");
  return 0;
}
