// Durability & write policies: the extensions layered on the paper's
// protocol, in one walkthrough.
//
//   1. On-disk snapshots: a cache instance persists its entries (with their
//      Rejig config-id stamps and quarantined keys) and restores them after
//      a process restart.
//   2. Write policies (Section 2): write-around (the paper's), write-through
//      (install the new value under the Q lease), and write-back
//      (acknowledge from the persistent cache; flush asynchronously).
//   3. The write-back durability payoff: buffered writes pinned in the
//      persistent cache survive a crash and are flushed after recovery.
//
// Build & run:  ./build/examples/durability_and_write_policies
#include <cstdio>
#include <memory>
#include <vector>

#include "src/cache/snapshot.h"
#include "src/client/gemini_client.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/write_back_flusher.h"
#include "src/store/data_store.h"

using namespace gemini;

int main() {
  VirtualClock clock;
  DataStore store;
  store.Put("order:1001", "{\"status\": \"pending\"}");

  std::vector<std::unique_ptr<CacheInstance>> owned;
  std::vector<CacheInstance*> instances;
  for (InstanceId i = 0; i < 2; ++i) {
    owned.push_back(std::make_unique<CacheInstance>(i, &clock));
    instances.push_back(owned.back().get());
  }
  Coordinator coordinator(&clock, instances, /*num_fragments=*/4);

  // ---- 1. Snapshots -----------------------------------------------------------
  std::printf("== on-disk snapshots ==\n");
  {
    GeminiClient client(&clock, &coordinator, instances, &store);
    Session s;
    (void)client.Read(s, "order:1001");  // cache it
  }
  const std::string snap = "/tmp/gemini_example.snap";
  if (Snapshot::WriteToFile(*instances[0], snap).ok() ||
      Snapshot::WriteToFile(*instances[1], snap).ok()) {
    std::printf("  wrote a snapshot (entries + config-id stamps + "
                "quarantined keys) to %s\n",
                snap.c_str());
  }
  CacheInstance reborn(9, &clock);
  if (Snapshot::LoadFromFile(reborn, snap).ok()) {
    std::printf("  restored it into a brand-new instance: %llu entries\n\n",
                (unsigned long long)reborn.stats().entry_count);
  }
  std::remove(snap.c_str());

  // ---- 2 & 3. Write-back ------------------------------------------------------
  std::printf("== write-back on a persistent cache ==\n");
  GeminiClient::Options wb;
  wb.write_policy = WritePolicy::kWriteBack;
  GeminiClient client(&clock, &coordinator, instances, &store, wb);
  WriteBackFlusher flusher(&clock, instances, &store);
  Session s;

  (void)client.Write(s, "order:1001", "{\"status\": \"shipped\"}");
  std::printf("  write acknowledged; store still has: %s\n",
              store.Query("order:1001")->data.c_str());
  auto r = client.Read(s, "order:1001");
  std::printf("  but the writer reads its own write: %s\n",
              r->value.data.c_str());

  // Crash before the flush: the buffered write is pinned in the persistent
  // payload and survives.
  auto cfg = coordinator.GetConfiguration();
  const InstanceId owner =
      cfg->fragment(cfg->FragmentOf("order:1001")).primary;
  std::printf("  crashing instance %u with the flush still pending...\n",
              owner);
  instances[owner]->Fail();
  instances[owner]->RecoverPersistent();
  std::printf("  recovered; pending flushes rebuilt from pinned entries: "
              "%zu\n",
              instances[owner]->pending_flush_count());
  const size_t flushed = flusher.FlushOnce(s);
  std::printf("  flusher committed %zu write(s); store now has: %s\n",
              flushed, store.Query("order:1001")->data.c_str());

  std::printf("\n(read-after-write under *instance failure* still needs the "
              "paper's write-around/-through: an unflushed buffered write "
              "is invisible to the secondary replica — see "
              "tests/write_back_test.cc and bench/ablation_write_policy.)\n");
  return 0;
}
