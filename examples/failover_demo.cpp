// Failover demo: walks one fragment through the full lifecycle of the
// paper's Figure 4 — normal -> transient -> recovery -> normal — narrating
// what each component does:
//
//   * the dirty list accumulating in the secondary replica (with its marker),
//   * still-valid persistent entries served the moment the primary returns,
//   * a recovery worker draining the dirty list under a Redlease,
//   * the coordinator completing recovery and retiring the secondary.
//
// Build & run:  ./build/examples/failover_demo
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/dirty_list.h"
#include "src/client/gemini_client.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"
#include "src/store/data_store.h"

using namespace gemini;

namespace {

void ShowFragment(const Coordinator& coordinator, FragmentId f) {
  auto cfg = coordinator.GetConfiguration();
  const auto& a = cfg->fragment(f);
  std::printf("  [config %llu] fragment %u: mode=%s primary=%d secondary=%d "
              "min-valid-config=%llu\n",
              (unsigned long long)cfg->id(), f,
              std::string(FragmentModeName(a.mode)).c_str(),
              a.primary == kInvalidInstance ? -1 : (int)a.primary,
              a.secondary == kInvalidInstance ? -1 : (int)a.secondary,
              (unsigned long long)a.config_id);
}

}  // namespace

int main() {
  VirtualClock clock;
  DataStore store;
  std::vector<std::unique_ptr<CacheInstance>> owned;
  std::vector<CacheInstance*> instances;
  for (InstanceId i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<CacheInstance>(i, &clock));
    instances.push_back(owned.back().get());
  }
  Coordinator::Options copts;
  copts.policy = RecoveryPolicy::GeminiO();  // overwrite dirty keys
  Coordinator coordinator(&clock, instances, /*num_fragments=*/6, copts);
  GeminiClient client(&clock, &coordinator, instances, &store);
  RecoveryWorker worker(&clock, &coordinator, instances);
  Session session;

  // Seed records and find a handful of keys owned by instance 0.
  std::vector<std::string> keys;
  auto cfg = coordinator.GetConfiguration();
  for (int i = 0; keys.size() < 4 && i < 500; ++i) {
    std::string key = "item:" + std::to_string(i);
    if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
      store.Put(key, "v1-of-" + key);
      keys.push_back(std::move(key));
    }
  }
  const FragmentId f = cfg->FragmentOf(keys[0]);

  std::printf("== normal mode ==\n");
  ShowFragment(coordinator, f);
  for (const auto& k : keys) (void)client.Read(session, k);  // warm primary
  std::printf("  warmed %zu keys into instance 0 (persistent)\n\n",
              keys.size());

  std::printf("== instance 0 fails -> transient mode ==\n");
  instances[0]->Fail();
  coordinator.OnInstanceFailed(0);
  ShowFragment(coordinator, f);

  // Writes during the failure: served by the secondary, recorded dirty.
  (void)client.Write(session, keys[0], std::string("v2-of-") + keys[0]);
  (void)client.Write(session, keys[1], std::string("v2-of-") + keys[1]);
  // A read during the failure populates the secondary with the new value.
  (void)client.Read(session, keys[0]);

  const InstanceId sec =
      coordinator.GetConfiguration()->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  auto payload = instances[sec]->Get(internal, DirtyListKey(f));
  auto list = DirtyList::Parse(payload->data);
  std::printf("  dirty list in secondary (instance %u): %zu key(s)\n", sec,
              list->size());
  for (const auto& k : list->keys()) std::printf("    dirty: %s\n", k.c_str());

  std::printf("\n== instance 0 returns -> recovery mode ==\n");
  instances[0]->RecoverPersistent();
  coordinator.OnInstanceRecovered(0);
  ShowFragment(coordinator, f);

  // Clean keys are served from the recovered primary immediately; dirty
  // keys are never served stale.
  auto clean = client.Read(session, keys[2]);
  std::printf("  read clean key %s: cache_hit=%d from instance %u (warm!)\n",
              keys[2].c_str(), clean->cache_hit, clean->instance);
  auto dirty = client.Read(session, keys[1]);
  std::printf("  read dirty key %s: value=%s (fresh=%s)\n", keys[1].c_str(),
              dirty->value.data.c_str(),
              dirty->value.version == store.VersionOf(keys[1]) ? "yes"
                                                               : "NO");

  std::printf("\n== recovery worker drains the dirty list ==\n");
  auto adopted = worker.TryAdoptFragment(session);
  while (worker.has_work()) (void)worker.Step(session);
  std::printf("  worker adopted fragment %d: overwrote %llu, deleted %llu "
              "dirty key(s)\n",
              adopted ? (int)*adopted : -1,
              (unsigned long long)worker.stats().keys_overwritten,
              (unsigned long long)worker.stats().keys_deleted);
  // Drain any remaining recovery-mode fragments of instance 0.
  while (worker.TryAdoptFragment(session).has_value()) {
    while (worker.has_work()) (void)worker.Step(session);
  }

  std::printf("\n== back to normal mode ==\n");
  ShowFragment(coordinator, f);
  auto final_read = client.Read(session, keys[0]);
  std::printf("  final read %s: %s (cache_hit=%d, fresh=%s)\n",
              keys[0].c_str(), final_read->value.data.c_str(),
              final_read->cache_hit,
              final_read->value.version == store.VersionOf(keys[0])
                  ? "yes"
                  : "NO");
  return 0;
}
