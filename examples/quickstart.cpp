// Quickstart: assemble a Gemini deployment by hand and run the basic
// cache-augmented read/write flow.
//
//   data store <- write-around -> cache instances <- leases <- client
//                                       ^
//                               coordinator (fragments, config ids)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/client/gemini_client.h"
#include "src/common/clock.h"
#include "src/coordinator/coordinator.h"
#include "src/store/data_store.h"

using namespace gemini;

int main() {
  // 1. The moving parts. A VirtualClock keeps the example deterministic;
  //    production code would pass &SystemClock::Global().
  VirtualClock clock;
  DataStore store;
  store.Put("user:42:profile", "{\"name\": \"Ada\"}");
  store.Put("user:43:profile", "{\"name\": \"Grace\"}");

  // Three cache instances...
  std::vector<std::unique_ptr<CacheInstance>> owned;
  std::vector<CacheInstance*> instances;
  for (InstanceId i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<CacheInstance>(i, &clock));
    instances.push_back(owned.back().get());
  }

  // ...a coordinator that partitions the key space into 12 fragments and
  // publishes the fragment->instance configuration...
  Coordinator::Options copts;
  copts.policy = RecoveryPolicy::GeminiOW();
  Coordinator coordinator(&clock, instances, /*num_fragments=*/12, copts);

  // ...and the client library the application links against.
  GeminiClient client(&clock, &coordinator, instances, &store);
  Session session;  // no cost model: real time, nothing to bill

  // 2. A read: cache miss -> the client queries the data store under an
  //    I lease, computes the entry, and caches it for future reads.
  auto first = client.Read(session, "user:42:profile");
  std::printf("first read : %s (cache_hit=%d, served by instance %u)\n",
              first->value.data.c_str(), first->cache_hit, first->instance);

  auto second = client.Read(session, "user:42:profile");
  std::printf("second read: %s (cache_hit=%d)\n",
              second->value.data.c_str(), second->cache_hit);

  // 3. A write (write-around): update the store, invalidate the cache entry
  //    under a Q lease. The next read recomputes the fresh value.
  (void)client.Write(session, "user:42:profile",
                     std::string("{\"name\": \"Ada Lovelace\"}"));
  auto after_write = client.Read(session, "user:42:profile");
  std::printf("after write: %s (cache_hit=%d)\n",
              after_write->value.data.c_str(), after_write->cache_hit);

  // 4. Kill the instance that owns the key. The coordinator assigns a
  //    secondary replica; reads and writes keep flowing, and every write is
  //    remembered on the fragment's dirty list.
  const FragmentId fragment =
      client.config()->FragmentOf("user:42:profile");
  const InstanceId owner = client.config()->fragment(fragment).primary;
  std::printf("\nfailing instance %u (owner of fragment %u)...\n", owner,
              fragment);
  instances[owner]->Fail();
  coordinator.OnInstanceFailed(owner);

  (void)client.Write(session, "user:42:profile",
                     std::string("{\"name\": \"Countess Lovelace\"}"));
  auto during = client.Read(session, "user:42:profile");
  std::printf("during failure: %s (served by instance %u, mode=%s)\n",
              during->value.data.c_str(), during->instance,
              std::string(FragmentModeName(
                  client.config()->fragment(fragment).mode))
                  .c_str());

  // 5. Recover it. Gemini reuses the instance's persistent content
  //    immediately and guarantees the dirty key is not served stale.
  instances[owner]->RecoverPersistent();
  coordinator.OnInstanceRecovered(owner);
  auto after_recovery = client.Read(session, "user:42:profile");
  std::printf("after recovery: %s (fresh=%s)\n",
              after_recovery->value.data.c_str(),
              after_recovery->value.version ==
                      store.VersionOf("user:42:profile")
                  ? "yes"
                  : "NO - STALE");
  return 0;
}
